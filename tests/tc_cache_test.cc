// Unit tests for the traditional-caching IOP block cache (src/tc/block_cache.h):
// LRU replacement, read coalescing, write-behind, read-modify-write on
// partial evictions, prefetch accounting, and quiesce.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/machine.h"
#include "src/fault/fault_spec.h"
#include "src/fs/striped_file.h"
#include "src/sim/engine.h"
#include "src/tc/block_cache.h"
#include "src/tc/cache_policy.h"

namespace ddio::tc {
namespace {

struct CacheFixture {
  sim::Engine engine{1};
  core::MachineConfig config;
  std::unique_ptr<core::Machine> machine;
  std::unique_ptr<fs::StripedFile> file;
  std::unique_ptr<BlockCache> cache;

  // `cache_spec` / `faults` are --tc-cache / --faults grammars; null = default.
  explicit CacheFixture(std::uint32_t capacity = 4, const char* cache_spec = nullptr,
                        const char* faults = nullptr) {
    config.num_cps = 2;
    config.num_iops = 1;
    config.num_disks = 1;
    if (faults != nullptr) {
      std::string error;
      EXPECT_TRUE(fault::FaultSpec::TryParse(faults, &config.faults, &error)) << error;
    }
    machine = std::make_unique<core::Machine>(engine, config);
    fs::StripedFile::Params params;
    params.file_bytes = 64 * 8192;  // 64 blocks.
    params.num_disks = 1;
    params.layout = fs::LayoutKind::kContiguous;
    file = std::make_unique<fs::StripedFile>(params, engine.rng());
    CacheSpec spec;
    if (cache_spec != nullptr) {
      std::string error;
      EXPECT_TRUE(CacheSpec::TryParse(cache_spec, &spec, &error)) << error;
    }
    cache = std::make_unique<BlockCache>(*machine, 0, capacity, /*tenant=*/0, spec);
    machine->StartDisks();
  }

  // Runs `task` to completion on the engine.
  void Run(sim::Task<> task) {
    engine.Spawn(std::move(task));
    engine.Run();
  }
};

TEST(BlockCacheTest, MissThenHit) {
  CacheFixture f;
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->ReadBlock(*fx.file, 0);
    co_await fx.cache->ReadBlock(*fx.file, 0);
  }(f));
  EXPECT_EQ(f.cache->stats().misses, 1u);
  EXPECT_EQ(f.cache->stats().hits, 1u);
  EXPECT_TRUE(f.cache->Contains(0));
}

TEST(BlockCacheTest, ConcurrentReadersCoalesceIntoOneDiskRead) {
  CacheFixture f;
  for (int i = 0; i < 5; ++i) {
    f.engine.Spawn([](CacheFixture& fx) -> sim::Task<> {
      co_await fx.cache->ReadBlock(*fx.file, 7);
    }(f));
  }
  f.engine.Run();
  EXPECT_EQ(f.cache->stats().misses, 1u);
  EXPECT_EQ(f.cache->stats().hits, 4u);
  EXPECT_EQ(f.machine->Disk(0).stats().read_requests, 1u);
}

TEST(BlockCacheTest, LruEvictionAtCapacity) {
  CacheFixture f(/*capacity=*/4);
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    for (std::uint64_t b = 0; b < 6; ++b) {
      co_await fx.cache->ReadBlock(*fx.file, b);
    }
  }(f));
  EXPECT_EQ(f.cache->stats().evictions, 2u);
  // Blocks 0 and 1 were least recently used.
  EXPECT_FALSE(f.cache->Contains(0));
  EXPECT_FALSE(f.cache->Contains(1));
  EXPECT_TRUE(f.cache->Contains(5));
  EXPECT_EQ(f.cache->size(), 4u);
}

TEST(BlockCacheTest, TouchOnHitProtectsFromEviction) {
  CacheFixture f(/*capacity=*/4);
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    for (std::uint64_t b = 0; b < 4; ++b) {
      co_await fx.cache->ReadBlock(*fx.file, b);
    }
    co_await fx.cache->ReadBlock(*fx.file, 0);  // Refresh block 0.
    co_await fx.cache->ReadBlock(*fx.file, 4);  // Evicts 1, not 0.
  }(f));
  EXPECT_TRUE(f.cache->Contains(0));
  EXPECT_FALSE(f.cache->Contains(1));
}

TEST(BlockCacheTest, FullBlockWriteFlushesBehind) {
  CacheFixture f;
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->WriteBlock(*fx.file, 3, 8192);
    co_await fx.cache->Quiesce(*fx.file);
  }(f));
  EXPECT_EQ(f.cache->stats().flushes, 1u);
  EXPECT_EQ(f.cache->stats().rmw_flushes, 0u);
  EXPECT_EQ(f.machine->Disk(0).stats().write_requests, 1u);
}

TEST(BlockCacheTest, PartialWritesAccumulateUntilFull) {
  CacheFixture f;
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    for (int quarter = 0; quarter < 4; ++quarter) {
      co_await fx.cache->WriteBlock(*fx.file, 3, 2048);
    }
    co_await fx.cache->Quiesce(*fx.file);
  }(f));
  // One flush when the fourth quarter completed the block; full, not RMW.
  EXPECT_EQ(f.cache->stats().flushes, 1u);
  EXPECT_EQ(f.cache->stats().rmw_flushes, 0u);
}

TEST(BlockCacheTest, PartialBlockQuiesceIsReadModifyWrite) {
  CacheFixture f;
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->WriteBlock(*fx.file, 3, 100);  // Never fills.
    co_await fx.cache->Quiesce(*fx.file);
  }(f));
  EXPECT_EQ(f.cache->stats().flushes, 1u);
  EXPECT_EQ(f.cache->stats().rmw_flushes, 1u);
  // RMW = one disk read + one disk write.
  EXPECT_EQ(f.machine->Disk(0).stats().read_requests, 1u);
  EXPECT_EQ(f.machine->Disk(0).stats().write_requests, 1u);
}

TEST(BlockCacheTest, DirtyEvictionFlushesFirst) {
  CacheFixture f(/*capacity=*/4);
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->WriteBlock(*fx.file, 0, 100);  // Dirty, partial.
    for (std::uint64_t b = 1; b < 5; ++b) {
      co_await fx.cache->ReadBlock(*fx.file, b);  // Forces eviction of 0.
    }
  }(f));
  EXPECT_FALSE(f.cache->Contains(0));
  EXPECT_EQ(f.cache->stats().rmw_flushes, 1u);
}

TEST(BlockCacheTest, PrefetchBringsBlockIn) {
  CacheFixture f;
  f.cache->PrefetchBlock(*f.file, 9);
  f.engine.Run();
  EXPECT_TRUE(f.cache->Contains(9));
  EXPECT_EQ(f.cache->stats().prefetch_issued, 1u);
  // A later demand read is a hit.
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->ReadBlock(*fx.file, 9);
  }(f));
  EXPECT_EQ(f.cache->stats().hits, 1u);
  EXPECT_EQ(f.cache->stats().misses, 0u);
}

TEST(BlockCacheTest, UnusedPrefetchCountedAsWastedOnEviction) {
  CacheFixture f(/*capacity=*/4);
  f.cache->PrefetchBlock(*f.file, 9);
  f.engine.Run();
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    for (std::uint64_t b = 0; b < 4; ++b) {
      co_await fx.cache->ReadBlock(*fx.file, b);  // Evicts the prefetch.
    }
  }(f));
  EXPECT_FALSE(f.cache->Contains(9));
  EXPECT_EQ(f.cache->stats().prefetch_wasted, 1u);
}

TEST(BlockCacheTest, PrefetchOfCachedBlockIsNoop) {
  CacheFixture f;
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->ReadBlock(*fx.file, 2);
  }(f));
  f.cache->PrefetchBlock(*f.file, 2);
  f.engine.Run();
  EXPECT_EQ(f.cache->stats().prefetch_issued, 0u);
}

TEST(BlockCacheTest, MoreWritersThanCapacityMakeProgress) {
  // 8 CP-streams writing distinct blocks through a 4-buffer cache: eviction
  // pressure with dirty partial blocks must not deadlock.
  CacheFixture f(/*capacity=*/4);
  for (std::uint64_t b = 0; b < 8; ++b) {
    f.engine.Spawn([](CacheFixture& fx, std::uint64_t block) -> sim::Task<> {
      for (int part = 0; part < 4; ++part) {
        co_await fx.cache->WriteBlock(*fx.file, block, 2048);
      }
    }(f, b));
  }
  f.engine.Run();
  f.Run([](CacheFixture& fx) -> sim::Task<> { co_await fx.cache->Quiesce(*fx.file); }(f));
  // All 8 blocks eventually written (some full flushes, some RMW after
  // eviction split them).
  EXPECT_GE(f.machine->Disk(0).stats().write_requests, 8u);
}

TEST(BlockCacheTest, QuiesceWaitsForPrefetchInFlight) {
  CacheFixture f;
  f.cache->PrefetchBlock(*f.file, 30);
  bool quiesced = false;
  f.engine.Spawn([](CacheFixture& fx, bool& done) -> sim::Task<> {
    co_await fx.cache->Quiesce(*fx.file);
    done = true;
  }(f, quiesced));
  f.engine.Run();
  EXPECT_TRUE(quiesced);
  EXPECT_TRUE(f.cache->Contains(30));
}

TEST(BlockCacheTest, QuiesceSeesBarePrefetchCompletion) {
  // Regression: DiskRead must publish its outstanding_io_ decrement on the
  // cache's condition itself. A quiescer parked on
  // WaitUntil(outstanding_io_ == 0) with ONLY prefetches in flight — no dirty
  // blocks, no demand traffic — has no other wakeup source to piggyback on.
  CacheFixture f;
  for (std::uint64_t b = 0; b < 3; ++b) {
    f.cache->PrefetchBlock(*f.file, 40 + b);
  }
  bool quiesced = false;
  f.engine.Spawn([](CacheFixture& fx, bool& done) -> sim::Task<> {
    co_await fx.cache->Quiesce(*fx.file);
    done = true;
  }(f, quiesced));
  f.engine.Run();
  EXPECT_TRUE(quiesced);
  EXPECT_EQ(f.cache->outstanding_io(), 0u);
  for (std::uint64_t b = 0; b < 3; ++b) {
    EXPECT_TRUE(f.cache->Contains(40 + b));
  }
}

TEST(BlockCacheTest, PrefetchLosingRaceToDemandReadNotCounted) {
  // Regression: prefetch_issued is counted inside the spawned coroutine, at
  // issue time — a prefetch that loses the GetOrCreate race with a demand
  // read never touches the disk and must not inflate the count.
  CacheFixture f;
  f.engine.Spawn([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->ReadBlock(*fx.file, 11);
  }(f));
  // The block is not resident yet, so the synchronous dedup check passes and
  // a prefetch coroutine is spawned — behind the demand read in the run queue.
  f.cache->PrefetchBlock(*f.file, 11);
  f.engine.Run();
  EXPECT_EQ(f.cache->stats().prefetch_issued, 0u);
  EXPECT_EQ(f.cache->stats().misses, 1u);
  EXPECT_EQ(f.machine->Disk(0).stats().read_requests, 1u);
}

TEST(BlockCacheTest, FailedFlushesCountedSeparately) {
  // A failed disk refuses every flush: the attempts must land in
  // failed_flushes, not flushes, and each attempt lands in exactly one bucket.
  CacheFixture f(/*capacity=*/4, /*cache_spec=*/nullptr, "disk:0,fail@t=0s");
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->WriteBlock(*fx.file, 0, 8192);  // Full: write-behind.
    co_await fx.cache->WriteBlock(*fx.file, 1, 100);   // Partial: RMW at quiesce.
    co_await fx.cache->Quiesce(*fx.file);
  }(f));
  EXPECT_EQ(f.cache->stats().flushes, 0u);
  EXPECT_EQ(f.cache->stats().failed_flushes, 2u);
  EXPECT_EQ(f.cache->stats().flushes + f.cache->stats().failed_flushes, 2u);
  EXPECT_GE(f.cache->stats().io_errors, 2u);
}

TEST(BlockCacheTest, HealthyFlushesNeverCountAsFailed) {
  CacheFixture f;
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->WriteBlock(*fx.file, 0, 8192);
    co_await fx.cache->WriteBlock(*fx.file, 1, 100);
    co_await fx.cache->Quiesce(*fx.file);
  }(f));
  EXPECT_EQ(f.cache->stats().flushes, 2u);
  EXPECT_EQ(f.cache->stats().failed_flushes, 0u);
  EXPECT_EQ(f.cache->stats().io_errors, 0u);
}

TEST(BlockCacheTest, HighWaterWriteBehindFlushesInBatches) {
  CacheFixture f(/*capacity=*/8, "lru:wb=hi:50");  // Threshold: 4 dirty blocks.
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    for (std::uint64_t b = 0; b < 3; ++b) {
      co_await fx.cache->WriteBlock(*fx.file, b, 8192);
    }
  }(f));
  // Below the high-water mark: every write acked from cache, no disk IO.
  EXPECT_EQ(f.machine->Disk(0).stats().write_requests, 0u);
  EXPECT_EQ(f.cache->dirty_blocks(), 3u);
  f.Run([](CacheFixture& fx) -> sim::Task<> {
    co_await fx.cache->WriteBlock(*fx.file, 3, 8192);  // Crosses the mark.
  }(f));
  // One batch of 4 full-block writes, no RMW reads.
  EXPECT_EQ(f.machine->Disk(0).stats().write_requests, 4u);
  EXPECT_EQ(f.machine->Disk(0).stats().read_requests, 0u);
  EXPECT_EQ(f.cache->dirty_blocks(), 0u);
  EXPECT_EQ(f.cache->stats().flushes, 4u);
}

TEST(BlockCacheTest, EvictionUnderBatchFlushPressureMakesProgress) {
  // Regression for EvictOne's flush-race path: after a raced flush, the
  // completion notification has already fired — parking on changed_ would
  // miss it; the evictor must rescan immediately. Run high-water write-behind
  // (concurrent batch flushers, the realistic race source) through a small
  // cache and require the run to drain completely.
  CacheFixture f(/*capacity=*/4, "lru:wb=hi:50");  // Threshold: 2 dirty blocks.
  for (std::uint64_t b = 0; b < 8; ++b) {
    f.engine.Spawn([](CacheFixture& fx, std::uint64_t block) -> sim::Task<> {
      co_await fx.cache->WriteBlock(*fx.file, block, 8192);
    }(f, b));
  }
  f.engine.Run();
  f.Run([](CacheFixture& fx) -> sim::Task<> { co_await fx.cache->Quiesce(*fx.file); }(f));
  EXPECT_EQ(f.cache->dirty_blocks(), 0u);
  EXPECT_EQ(f.cache->stats().flushes, 8u);
  EXPECT_EQ(f.machine->Disk(0).stats().write_requests, 8u);
}

}  // namespace
}  // namespace ddio::tc
