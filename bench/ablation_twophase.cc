// Ablation A4: two-phase I/O vs. disk-directed I/O vs. traditional caching.
// The paper argues (Section 7.1) that disk-directed I/O strictly dominates
// two-phase I/O: no conforming-distribution choice, disk presorting, no
// extra permutation memory, the permutation overlapped with I/O, and each
// datum crossing the network once instead of twice. This bench quantifies
// that prediction, which the paper itself did not simulate.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A4: two-phase I/O comparison",
                       "paper Section 7.1 prediction: DDIO >= 2Phase >= TC(worst)", options);
  for (fs::LayoutKind layout : {fs::LayoutKind::kContiguous, fs::LayoutKind::kRandomBlocks}) {
    std::printf("-- %s layout --\n", fs::LayoutName(layout));
    core::Table table({"pattern", "rec", "DDIO(sort)", "2Phase", "TC"});
    for (const char* pattern : {"rb", "rc", "rcc", "wb", "wc"}) {
      for (std::uint32_t record : {8u, 8192u}) {
        auto run = [&](core::Method method) {
          core::ExperimentConfig cfg;
          cfg.pattern = pattern;
          cfg.record_bytes = record;
          cfg.layout = layout;
          cfg.method = method;
          cfg.trials = options.trials;
          cfg.file_bytes = options.file_bytes();
          options.ApplyMachine(&cfg.machine);
          return core::RunExperiment(cfg, options.jobs).mean_mbps;
        };
        table.AddRow({pattern, std::to_string(record),
                      core::Fixed(run(core::Method::kDiskDirected), 2),
                      core::Fixed(run(core::Method::kTwoPhase), 2),
                      core::Fixed(run(core::Method::kTraditionalCaching), 2)});
      }
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
