// Ablation A2: buffers per disk in the disk-directed server. The paper uses
// two ("using double-buffering"); one buffer cannot overlap the media with
// the network/bus, and more than two should add little because the disk is
// already kept busy.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A2: DDIO buffers per disk",
                       "paper Section 3: two buffers per disk per file suffice", options);
  core::Table table({"buffers", "contig rb MB/s", "contig rc8 MB/s", "random rb MB/s"});
  for (std::uint32_t buffers : {1u, 2u, 3u, 4u, 8u}) {
    auto run = [&](fs::LayoutKind layout, const char* pattern, std::uint32_t record_bytes) {
      core::ExperimentConfig cfg;
      cfg.pattern = pattern;
      cfg.record_bytes = record_bytes;
      cfg.layout = layout;
      cfg.method = core::Method::kDiskDirected;
      cfg.ddio_buffers_per_disk = buffers;
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      options.ApplyMachine(&cfg.machine);
      return core::RunExperiment(cfg, options.jobs).mean_mbps;
    };
    table.AddRow({std::to_string(buffers),
                  core::Fixed(run(fs::LayoutKind::kContiguous, "rb", 8192), 2),
                  core::Fixed(run(fs::LayoutKind::kContiguous, "rc", 8), 2),
                  core::Fixed(run(fs::LayoutKind::kRandomBlocks, "rb", 8192), 2)});
  }
  table.Print(std::cout);
  return 0;
}
