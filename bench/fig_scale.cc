// Scalability sweep: throughput as the machine grows from the paper's 16 CPs
// to 4096 CPs, under both interconnect models (flat torus and the two-level
// tree from the TopologyRegistry), for TC and DDIO. Goes beyond the paper's
// Figure 5 (1-16 CPs on a fixed 6x6 torus): the point is that the simulator
// itself scales — sparse link-fault storage, per-topology link tables — and
// that the qualitative TC-vs-DDIO gap survives on a hierarchical network
// with an oversubscribed trunk.
//
// Geometry: IOPs = disks = max(16, CPs/16); the file grows with the machine
// (64 KB per CP, 16 KB with --quick) so per-CP work stays constant. Pattern
// rb (record-blocked), 8 KB records, contiguous layout, per-link contention
// on. --quick trims the CP list to {32, 1024} for CI smoke runs; output is
// byte-identical for any --jobs value.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/net/net_spec.h"

namespace {

ddio::net::NetSpec ParseTopology(const char* text) {
  ddio::net::NetSpec spec;
  std::string error;
  if (!ddio::net::NetSpec::TryParse(text, &spec, &error)) {
    std::fprintf(stderr, "fig_scale: bad built-in spec %s: %s\n", text, error.c_str());
    std::exit(2);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using ddio::bench::BenchOptions;
  auto options = BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Scalability: CPs x interconnect topology",
      "beyond the paper: 6x6 torus held at 32 nodes; here the machine grows to 4096 CPs",
      options);

  const std::vector<std::uint32_t> cps_values =
      options.quick ? std::vector<std::uint32_t>{32, 1024}
                    : std::vector<std::uint32_t>{32, 128, 512, 1024, 2048, 4096};
  // Named (label, spec) pairs; the tree's 400 MB/s trunk oversubscribes its
  // 32 x 200 MB/s edge links 16:1, so cross-rack traffic actually contends.
  const std::vector<std::pair<std::string, ddio::net::NetSpec>> topologies = {
      {"torus", ddio::net::NetSpec()},
      {"tree", ParseTopology("tree:radix=32,up=400MB")},
  };
  const std::vector<std::string> methods = {"tc", "ddio"};
  const std::uint64_t per_cp_bytes = options.quick ? 16 * 1024 : 64 * 1024;

  std::vector<ddio::core::ExperimentConfig> cells;
  for (std::uint32_t cps : cps_values) {
    for (const auto& [label, topo] : topologies) {
      for (const std::string& method : methods) {
        ddio::core::ExperimentConfig cfg;
        cfg.pattern = "rb";
        cfg.record_bytes = 8192;
        cfg.layout = ddio::fs::LayoutKind::kContiguous;
        ddio::bench::ApplyMethod(cfg, method);
        cfg.trials = options.trials;
        cfg.machine.num_cps = cps;
        cfg.machine.num_iops = std::max<std::uint32_t>(16, cps / 16);
        cfg.machine.num_disks = cfg.machine.num_iops;
        cfg.machine.net.model_link_contention = true;
        cfg.file_bytes = per_cp_bytes * cps;
        options.ApplyMachine(&cfg.machine);
        std::string error;
        if (!topo.Validate(cfg.machine.num_nodes(), &error)) {
          std::fprintf(stderr, "fig_scale: %s at %u nodes: %s\n", label.c_str(),
                       cfg.machine.num_nodes(), error.c_str());
          return 2;
        }
        cfg.machine.net.topology = topo;
        cells.push_back(std::move(cfg));
      }
    }
  }

  ddio::core::TrialExecutor executor(options.jobs);
  std::vector<ddio::core::ExperimentResult> results =
      executor.Map<ddio::core::ExperimentResult>(
          cells.size(), [&](std::size_t i) { return ddio::core::RunExperiment(cells[i], 1); });

  std::vector<std::string> headers = {"CPs", "IOPs"};
  for (const auto& [label, topo] : topologies) {
    for (const std::string& method : methods) {
      headers.push_back(label + " " + ddio::bench::MethodLabel(method));
    }
  }
  ddio::core::Table table(headers);
  ddio::bench::JsonPointSink json(options.json_path);

  std::size_t cell = 0;
  for (std::uint32_t cps : cps_values) {
    std::vector<std::string> row = {std::to_string(cps),
                                    std::to_string(std::max<std::uint32_t>(16, cps / 16))};
    for (const auto& [label, topo] : topologies) {
      for (const std::string& method : methods) {
        const ddio::core::ExperimentResult& result = results[cell++];
        row.push_back(ddio::core::Fixed(result.mean_mbps, 2));
        json.Add("CPs", cps, ddio::bench::MethodLabel(method), "rb", result.mean_mbps,
                 result.cv, options.trials, /*disk_model=*/"", /*spec=*/topo.text());
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n(all values MB/s; rb pattern, contention on, file = %llu KB per CP)\n",
              static_cast<unsigned long long>(per_cp_bytes / 1024));
  return 0;
}
