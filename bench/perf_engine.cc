// Event-core performance benchmark: raw event throughput (events/sec) of the
// simulation engine, plus an end-to-end Figure 5-style sweep timing.
//
// Three microbenchmarks target the engine's measured hot paths:
//   * yield_storm        — Delay(0) self-reschedule, the pure zero-delay path
//   * semaphore_ring     — token passing through semaphore wait lists, i.e.
//                          the Schedule(0) wakeups issued by sync primitives
//   * timed_delays       — pseudo-random nonzero delays, the timed-event path
// The end-to-end benchmark times one Fig. 5 cell (DDIO + TC, rb pattern) and
// reports wall seconds and simulation events/sec.
//
// With --json=PATH the results are written as machine-readable JSON; the
// committed BENCH_engine.json tracks these numbers across PRs.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace ddio::bench {
namespace {

struct PerfResult {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double sim_seconds = 0.0;
  sim::EngineStats engine_stats;
  bool has_engine_stats = false;
};

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

PerfResult MeasureRun(const char* name, sim::Engine& engine) {
  const auto begin = std::chrono::steady_clock::now();
  engine.Run();
  const auto end = std::chrono::steady_clock::now();
  PerfResult result;
  result.name = name;
  result.events = engine.events_processed();
  result.wall_seconds = Seconds(begin, end);
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0.0;
  result.sim_seconds = sim::ToSec(engine.now());
  result.engine_stats = engine.stats();
  result.has_engine_stats = true;
  return result;
}

// Delay(0) self-reschedule: every event is a zero-delay wakeup at the current
// simulated instant, the dominant event class in the file-system workloads.
PerfResult YieldStorm(bool quick) {
  const int tasks = quick ? 32 : 128;
  const std::uint64_t yields = quick ? 20'000 : 100'000;
  sim::Engine engine;
  for (int i = 0; i < tasks; ++i) {
    engine.Spawn([](sim::Engine& e, std::uint64_t n) -> sim::Task<> {
      for (std::uint64_t k = 0; k < n; ++k) {
        co_await e.Yield();
      }
    }(engine, yields));
  }
  return MeasureRun("yield_storm", engine);
}

// A single token circulates a ring of semaphores: every hop is a sync-
// primitive wakeup (Acquire park + Release Schedule(0)), the paper
// machinery's semaphore-handoff hot path.
PerfResult SemaphoreRing(bool quick) {
  const int ring = 64;
  const std::uint64_t laps = quick ? 2'000 : 20'000;
  sim::Engine engine;
  std::vector<std::unique_ptr<sim::Semaphore>> sems;
  sems.reserve(ring);
  for (int i = 0; i < ring; ++i) {
    sems.push_back(std::make_unique<sim::Semaphore>(engine, 0));
  }
  for (int i = 0; i < ring; ++i) {
    engine.Spawn([](sim::Semaphore& mine, sim::Semaphore& next, std::uint64_t n) -> sim::Task<> {
      for (std::uint64_t k = 0; k < n; ++k) {
        co_await mine.Acquire();
        next.Release();
      }
    }(*sems[static_cast<std::size_t>(i)], *sems[static_cast<std::size_t>((i + 1) % ring)], laps));
  }
  sems[0]->Release();  // Inject the token.
  return MeasureRun("semaphore_ring", engine);
}

// Pseudo-random nonzero delays: exercises the timed-event tier (the calendar
// queue after this PR; the binary heap before it).
PerfResult TimedDelays(bool quick) {
  const int tasks = quick ? 32 : 128;
  const std::uint64_t delays = quick ? 10'000 : 50'000;
  sim::Engine engine;
  for (int i = 0; i < tasks; ++i) {
    engine.Spawn([](sim::Engine& e, std::uint64_t n, std::uint64_t lcg) -> sim::Task<> {
      for (std::uint64_t k = 0; k < n; ++k) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        // Delays spread over [1, ~1 ms), mimicking cycle charges through
        // device service times.
        co_await e.Delay(1 + (lcg >> 44));
      }
    }(engine, delays, 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i)));
  }
  return MeasureRun("timed_delays", engine);
}

// One Fig. 5-style cell end to end (both methods, rb pattern) so the
// event-core speedup is visible in real workload wall time too.
PerfResult EndToEnd(const BenchOptions& options, core::Method method, const char* name) {
  core::ExperimentConfig cfg;
  cfg.pattern = "rb";
  cfg.record_bytes = 8192;
  cfg.layout = fs::LayoutKind::kContiguous;
  cfg.method = method;
  cfg.trials = options.trials;
  cfg.file_bytes = options.file_bytes();
  options.ApplyMachine(&cfg.machine);
  const auto begin = std::chrono::steady_clock::now();
  auto result = core::RunExperiment(cfg);
  const auto end = std::chrono::steady_clock::now();
  PerfResult perf;
  perf.name = name;
  perf.events = result.total_events;
  perf.wall_seconds = Seconds(begin, end);
  perf.events_per_sec =
      perf.wall_seconds > 0 ? static_cast<double>(perf.events) / perf.wall_seconds : 0.0;
  return perf;
}

// A small Fig. 5-style sweep (2 methods x 4 patterns) executed on the
// parallel trial executor at a given job count. Identical cells for every
// job count (and byte-identical results — tests/parallel_runner_test.cc),
// so wall-second ratios between jobs=1 and jobs=N measure executor scaling
// directly.
PerfResult SweepAtJobs(const BenchOptions& options, unsigned jobs) {
  static const char* kPatterns[] = {"ra", "rn", "rb", "rc"};
  std::vector<core::ExperimentConfig> cells;
  for (core::Method method : {core::Method::kDiskDirected, core::Method::kTraditionalCaching}) {
    for (const char* pattern : kPatterns) {
      core::ExperimentConfig cfg;
      cfg.pattern = pattern;
      cfg.record_bytes = 8192;
      cfg.layout = fs::LayoutKind::kContiguous;
      cfg.method = method;
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      options.ApplyMachine(&cfg.machine);
      cells.push_back(std::move(cfg));
    }
  }
  core::TrialExecutor executor(jobs);
  const auto begin = std::chrono::steady_clock::now();
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });
  const auto end = std::chrono::steady_clock::now();
  PerfResult perf;
  perf.name = "e2e_sweep_jobs" + std::to_string(executor.jobs());
  for (const core::ExperimentResult& result : results) {
    perf.events += result.total_events;
  }
  perf.wall_seconds = Seconds(begin, end);
  perf.events_per_sec =
      perf.wall_seconds > 0 ? static_cast<double>(perf.events) / perf.wall_seconds : 0.0;
  return perf;
}

void WriteJson(const std::string& path, const std::vector<PerfResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_engine: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"perf_engine\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PerfResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %" PRIu64
                 ", \"wall_seconds\": %.6f, \"events_per_sec\": %.0f}%s\n",
                 r.name.c_str(), r.events, r.wall_seconds, r.events_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace ddio::bench

int main(int argc, char** argv) {
  using namespace ddio::bench;
  auto options = BenchOptions::Parse(argc, argv);
  const bool quick = options.quick;
  PrintPreamble("Engine event-core performance",
                "raw event throughput; higher is better (not a paper figure)", options);

  std::vector<PerfResult> results;
  results.push_back(YieldStorm(quick));
  results.push_back(SemaphoreRing(quick));
  results.push_back(TimedDelays(quick));
  results.push_back(EndToEnd(options, ddio::core::Method::kDiskDirected, "e2e_fig5_ddio_rb"));
  results.push_back(EndToEnd(options, ddio::core::Method::kTraditionalCaching, "e2e_fig5_tc_rb"));
  // Executor scaling: the same sweep serially and, when --jobs asks for
  // parallelism (N>1, or 0 = all hardware threads), again on the pool.
  // --jobs=1 (the default) stays strictly single-threaded, as documented.
  const unsigned scale_jobs = ddio::core::EffectiveJobs(options.jobs);
  results.push_back(SweepAtJobs(options, 1));
  if (scale_jobs > 1) {
    results.push_back(SweepAtJobs(options, scale_jobs));
    const PerfResult& serial = results[results.size() - 2];
    const PerfResult& parallel = results.back();
    if (parallel.wall_seconds > 0) {
      std::printf("sweep jobs scaling: %ux -> %.2fx speedup\n", scale_jobs,
                  serial.wall_seconds / parallel.wall_seconds);
    }
  }

  std::printf("%-20s %12s %10s %14s\n", "benchmark", "events", "wall s", "events/sec");
  for (const PerfResult& r : results) {
    std::printf("%-20s %12" PRIu64 " %10.3f %14.0f\n", r.name.c_str(), r.events, r.wall_seconds,
                r.events_per_sec);
  }
  for (const PerfResult& r : results) {
    if (r.has_engine_stats) {
      std::printf("\n-- %s --\n", r.name.c_str());
      ddio::core::PrintEngineStats(r.engine_stats, std::cout);
    }
  }
  if (!options.json_path.empty()) {
    WriteJson(options.json_path, results);
  }
  return 0;
}
