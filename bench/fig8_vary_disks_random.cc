// Figure 8: like Figure 7 (disks on one IOP/bus) but on the RANDOM-BLOCKS
// layout.
//
// Paper shape: random access keeps per-disk throughput low (~0.4-0.5 MB/s
// effective), so the configuration stays disk-limited across the sweep and
// approaches the bus limit only at 32 disks.

#include "bench/bench_util.h"
#include "bench/fig_sweep_common.h"

int main(int argc, char** argv) {
  auto options = ddio::bench::BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Figure 8: varying the number of disks, one IOP/bus, random-blocks layout",
      "disk-limited throughout; approaches the 10 MB/s bus only at ~32 disks", options);
  ddio::bench::RunSweep(options, "disks", {1, 2, 4, 8, 16, 32},
                        ddio::fs::LayoutKind::kRandomBlocks,
                        [](ddio::core::ExperimentConfig& cfg, std::uint32_t disks) {
                          cfg.machine.num_iops = 1;
                          cfg.machine.num_disks = disks;
                        });
  return 0;
}
