// Figure 3: throughput of disk-directed I/O (with and without block-list
// presort) vs. traditional caching on the RANDOM-BLOCKS disk layout, for all
// 19 access patterns and both record sizes. `ra` throughput is normalized by
// the number of CPs (the metric already counts the file once).
//
// Paper shape to reproduce: DDIO(sort) flat at ~6.2 MB/s reading and
// ~7.4-7.5 MB/s writing across all patterns; TC pattern-dependent, <= 5 MB/s,
// down to ~0.8 MB/s on 8-byte patterns (up to 9.0x slower than DDIO+sort);
// DDIO without sort still >= TC (up to 6.1x), presort adds 41-50%.

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"

int main(int argc, char** argv) {
  auto options = ddio::bench::BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Figure 3: random-blocks disk layout",
      "DDIO(sort) ~6.2 r / ~7.4-7.5 w MB/s flat; TC 0.8-5 MB/s; presort +41-50%", options);
  ddio::bench::RunPatternGrid(options, ddio::fs::LayoutKind::kRandomBlocks,
                              {"ddio", "ddio-nosort", "tc"});
  return 0;
}
