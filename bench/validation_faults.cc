// Validation: fault injection, mirroring tax, and degraded-mode throughput.
//
// Three questions the fault layer has to answer with numbers, per storage
// model (hp97560 / ssd / fixed) and per access method:
//
//   1. Mirroring tax — what does layout=mirror:2 cost a healthy write
//      collective? Every block is written twice, so the naive bound is 2x;
//      disk-directed I/O should land under it (both copies join one sorted
//      sweep) while TC pays closer to full price.
//   2. Degraded reads — with one of 16 disks failed at t=0 and mirror:2
//      covering it, every method must finish with a verified data image.
//      The throughput delta vs the healthy mirrored read is the cost of
//      rerouting ~1/16 of the blocks to their surviving copies.
//   3. Survival — a compound plan (disk stall + IOP crash mid-operation)
//      on the paper's drive: the point is the printed OpStatus, proving
//      recovery is detected and bounded rather than silent or hung.
//
// Every cell runs under the normal validation harness, so a "degraded"
// outcome still means the delivered image was byte-checked. Results land
// in BENCH_faults.json. Same flags as every bench (--trials, --file-mb,
// --quick, --jobs, --json); --disk is rejected — the model sweep is the
// subject. Output is byte-identical for any --jobs value.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/fault/fault_spec.h"

namespace {

// Worst outcome across a result's trials, plus summed retries.
struct CellStatus {
  ddio::core::Outcome outcome = ddio::core::Outcome::kSuccess;
  std::uint64_t retries = 0;
};

CellStatus Summarize(const ddio::core::ExperimentResult& result) {
  CellStatus s;
  for (const ddio::core::OpStats& trial : result.trials) {
    if (static_cast<int>(trial.status.outcome) > static_cast<int>(s.outcome)) {
      s.outcome = trial.status.outcome;
    }
    s.retries += trial.status.retries;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddio;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  if (!options.disks.empty()) {
    std::fprintf(stderr,
                 "validation_faults sweeps its own fixed model set; --disk is not "
                 "accepted here\n");
    return 2;
  }
  bench::PrintPreamble("Validation: fault injection and degraded modes",
                       "beyond the paper: mirroring tax, degraded reads, recovery status",
                       options);

  struct ModelRow {
    const char* label;
    const char* spec;
  };
  static const ModelRow kModels[] = {
      {"hp97560", "hp97560"},
      {"ssd", "ssd:chan=4,rlat=80us,wlat=200us"},
      {"fixed", "fixed:lat=0.2ms,bw=40MB"},
  };
  const std::vector<std::string> methods = {"tc", "ddio", "ddio-nosort", "twophase"};
  static const char* kDegradedPlan = "disk:5,fail@t=0s";
  static const char* kSurvivalPlan = "disk:2,stall=50ms@t=10ms;iop:1,crash@t=30ms";

  auto base_cell = [&](const char* model_spec, const std::string& method, const char* pattern,
                       std::uint32_t replicas, const char* fault_plan) {
    core::ExperimentConfig cfg;
    cfg.pattern = pattern;
    cfg.record_bytes = 8192;
    cfg.layout = fs::LayoutKind::kRandomBlocks;
    cfg.replicas = replicas;
    bench::ApplyMethod(cfg, method);
    cfg.trials = options.trials;
    cfg.file_bytes = options.file_bytes();
    std::string error;
    std::vector<disk::DiskSpec> specs;
    if (!disk::DiskSpec::TryParseList(model_spec, &specs, &error)) {
      std::fprintf(stderr, "validation_faults: bad built-in spec %s: %s\n", model_spec,
                   error.c_str());
      std::exit(2);
    }
    cfg.machine.SetDisks(std::move(specs));
    if (fault_plan != nullptr) {
      if (!fault::FaultSpec::TryParse(fault_plan, &cfg.machine.faults, &error)) {
        std::fprintf(stderr, "validation_faults: bad built-in plan %s: %s\n", fault_plan,
                     error.c_str());
        std::exit(2);
      }
      if (!cfg.machine.faults.Validate(cfg.machine.num_cps, cfg.machine.num_iops,
                                       cfg.machine.num_disks, &error)) {
        std::fprintf(stderr, "validation_faults: plan rejected: %s\n", error.c_str());
        std::exit(2);
      }
    }
    return cfg;
  };

  // Cell order (one flat vector so --jobs parallelism covers everything):
  //   [models x methods x {plain wb, mirrored wb}]       mirroring tax
  //   [models x methods x {healthy rb, degraded rb}]     degraded reads
  //   [methods x survival rb]                            survival
  std::vector<core::ExperimentConfig> cells;
  for (const ModelRow& model : kModels) {
    for (const std::string& method : methods) {
      cells.push_back(base_cell(model.spec, method, "wb", 1, nullptr));
      cells.push_back(base_cell(model.spec, method, "wb", 2, nullptr));
    }
  }
  for (const ModelRow& model : kModels) {
    for (const std::string& method : methods) {
      cells.push_back(base_cell(model.spec, method, "rb", 2, nullptr));
      cells.push_back(base_cell(model.spec, method, "rb", 2, kDegradedPlan));
    }
  }
  for (const std::string& method : methods) {
    cells.push_back(base_cell(kModels[0].spec, method, "rb", 2, kSurvivalPlan));
  }

  core::TrialExecutor executor(options.jobs);
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });

  bench::JsonPointSink json(options.json_path);
  std::size_t cell = 0;

  std::printf("== Mirroring tax: wb, random-block layout, mirror:2 vs unreplicated ==\n");
  for (std::size_t m = 0; m < std::size(kModels); ++m) {
    std::printf("-- %s (%s) --\n", kModels[m].label, kModels[m].spec);
    core::Table table({"method", "plain MB/s", "mirror:2 MB/s", "tax", "status"});
    for (const std::string& method : methods) {
      const core::ExperimentResult& plain = results[cell++];
      const core::ExperimentResult& mirrored = results[cell++];
      const CellStatus status = Summarize(mirrored);
      const double tax = mirrored.mean_mbps > 0 ? plain.mean_mbps / mirrored.mean_mbps : 0.0;
      table.AddRow({bench::MethodLabel(method), core::Fixed(plain.mean_mbps, 2),
                    core::Fixed(mirrored.mean_mbps, 2), core::Fixed(tax, 2) + "x",
                    core::OutcomeName(status.outcome)});
      json.Add("mirror_tax_plain", m, bench::MethodLabel(method), "wb", plain.mean_mbps,
               plain.cv, options.trials, kModels[m].label);
      json.Add("mirror_tax_mirror2", m, bench::MethodLabel(method), "wb", mirrored.mean_mbps,
               mirrored.cv, options.trials, kModels[m].label);
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("== Degraded reads: rb, mirror:2, disk 5 failed at t=0 vs healthy ==\n");
  for (std::size_t m = 0; m < std::size(kModels); ++m) {
    std::printf("-- %s (%s) --\n", kModels[m].label, kModels[m].spec);
    core::Table table(
        {"method", "healthy MB/s", "degraded MB/s", "slowdown", "status", "retries"});
    for (const std::string& method : methods) {
      const core::ExperimentResult& healthy = results[cell++];
      const core::ExperimentResult& degraded = results[cell++];
      const CellStatus status = Summarize(degraded);
      const double slow = degraded.mean_mbps > 0 ? healthy.mean_mbps / degraded.mean_mbps : 0.0;
      table.AddRow({bench::MethodLabel(method), core::Fixed(healthy.mean_mbps, 2),
                    core::Fixed(degraded.mean_mbps, 2), core::Fixed(slow, 2) + "x",
                    core::OutcomeName(status.outcome), std::to_string(status.retries)});
      json.Add("degraded_healthy", m, bench::MethodLabel(method), "rb", healthy.mean_mbps,
               healthy.cv, options.trials, kModels[m].label);
      json.Add("degraded_diskfail", m, bench::MethodLabel(method), "rb", degraded.mean_mbps,
               degraded.cv, options.trials, kModels[m].label);
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("== Survival: rb, mirror:2, hp97560, plan \"%s\" ==\n", kSurvivalPlan);
  {
    core::Table table({"method", "MB/s", "status", "retries"});
    for (const std::string& method : methods) {
      const core::ExperimentResult& result = results[cell++];
      const CellStatus status = Summarize(result);
      table.AddRow({bench::MethodLabel(method), core::Fixed(result.mean_mbps, 2),
                    core::OutcomeName(status.outcome), std::to_string(status.retries)});
      json.Add("survival", 0, bench::MethodLabel(method), "rb", result.mean_mbps, result.cv,
               options.trials, "hp97560");
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("(every degraded cell still passed the byte-level validation harness;\n"
              " \"failed\" anywhere above means a bug — recovery must succeed with mirror:2)\n");
  return 0;
}
