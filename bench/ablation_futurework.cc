// Ablation A5: the paper's Future Work items, implemented and measured.
//
//  * "reduce overhead by allowing the application to make 'strided'
//    requests to the traditional caching system" — TC coalesces all of a
//    CP's runs within one block into a single request.
//  * "optimize network message traffic by using gather/scatter messages to
//    move non-contiguous data" — DDIO batches a block's pieces per CP into
//    one Memput/Memget ("the real solution" to the 8-byte-record penalty).
//
// Both matter only for small records; 8 KB-record rows are the control.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A5: future-work extensions (contiguous layout)",
                       "paper Section 8: strided TC requests; gather/scatter Memput/Memget",
                       options);
  core::Table table({"pattern", "rec", "TC", "TC+strided", "DDIO", "DDIO+gather"});
  for (const char* pattern : {"rc", "rcc", "wc", "wcc"}) {
    for (std::uint32_t record : {8u, 8192u}) {
      auto run = [&](core::Method method, bool extension) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.record_bytes = record;
        cfg.method = method;
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        cfg.tc_strided = extension && method == core::Method::kTraditionalCaching;
        cfg.ddio_gather_scatter = extension && method == core::Method::kDiskDirected;
        options.ApplyMachine(&cfg.machine);
        return core::RunExperiment(cfg, options.jobs).mean_mbps;
      };
      table.AddRow({pattern, std::to_string(record),
                    core::Fixed(run(core::Method::kTraditionalCaching, false), 2),
                    core::Fixed(run(core::Method::kTraditionalCaching, true), 2),
                    core::Fixed(run(core::Method::kDiskDirected, false), 2),
                    core::Fixed(run(core::Method::kDiskDirected, true), 2)});
    }
  }
  table.Print(std::cout);
  std::printf("\n(gather/scatter should recover most of DDIO's 8-byte-record deficit;\n"
              " strided requests should lift TC's small-record floor)\n");
  return 0;
}
