// Figure 7: throughput as the number of disks varies on ONE IOP (one 10 MB/s
// bus), 16 CPs, contiguous layout, 8 KB records.
//
// Paper shape: scales with disks (2.34 MB/s each) until the single bus
// saturates near 10 MB/s at 8+ disks.

#include "bench/bench_util.h"
#include "bench/fig_sweep_common.h"

int main(int argc, char** argv) {
  auto options = ddio::bench::BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Figure 7: varying the number of disks, one IOP/bus, contiguous layout",
      "disk-limited at 1-4 disks (2.34 MB/s each); bus-limited ~10 MB/s at 8-32", options);
  ddio::bench::RunSweep(options, "disks", {1, 2, 4, 8, 16, 32},
                        ddio::fs::LayoutKind::kContiguous,
                        [](ddio::core::ExperimentConfig& cfg, std::uint32_t disks) {
                          cfg.machine.num_iops = 1;
                          cfg.machine.num_disks = disks;
                        });
  return 0;
}
