// Shared driver for the sensitivity sweeps (Figures 5-8): ra/rn/rb/rc with
// 8 KB records while one machine dimension varies. Methods are named by
// their FileSystemRegistry keys; the default pair is the paper's DDIO-vs-TC
// comparison.

#ifndef DDIO_BENCH_FIG_SWEEP_COMMON_H_
#define DDIO_BENCH_FIG_SWEEP_COMMON_H_

#include <cctype>
#include <cstdio>
#include <iostream>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"

namespace ddio::bench {

// Runs the sweep patterns under every named method for every value of the
// varied dimension. `configure(cfg, value)` applies the dimension.
//
// With options.jobs > 1 the (value, method, pattern) cells run concurrently
// on the fixed pool (each cell's trials stay serial inside it — the cell
// grid alone saturates the pool); results land in a cell-indexed vector and
// the table rows and JSON points are emitted in the original serial order,
// so stdout and --json output are byte-identical for any job count.
inline void RunSweep(const BenchOptions& options, const char* dimension_name,
                     const std::vector<std::uint32_t>& values, fs::LayoutKind layout,
                     const std::function<void(core::ExperimentConfig&, std::uint32_t)>& configure,
                     const std::vector<std::string>& methods = {"ddio", "tc"}) {
  static const char* kPatterns[] = {"ra", "rn", "rb", "rc"};
  std::vector<std::string> headers = {dimension_name};
  for (const std::string& method : methods) {
    std::string label = method;
    for (char& c : label) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    for (const char* pattern : kPatterns) {
      headers.push_back(label + " " + pattern);
    }
  }
  core::Table table(headers);
  JsonPointSink json(options.json_path);

  std::vector<core::ExperimentConfig> cells;
  for (std::uint32_t value : values) {
    for (const std::string& method : methods) {
      for (const char* pattern : kPatterns) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.record_bytes = 8192;
        cfg.layout = layout;
        ApplyMethod(cfg, method);
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        options.ApplyExperiment(&cfg);
        configure(cfg, value);
        cells.push_back(std::move(cfg));
      }
    }
  }
  core::TrialExecutor executor(options.jobs);
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });

  std::size_t cell = 0;
  for (std::uint32_t value : values) {
    std::vector<std::string> row = {std::to_string(value)};
    for (const std::string& method : methods) {
      for (const char* pattern : kPatterns) {
        const core::ExperimentResult& result = results[cell++];
        row.push_back(core::Fixed(result.mean_mbps, 2));
        const core::PhaseAttribution& attrib = result.trials.back().attrib;
        json.Add(dimension_name, value, MethodLabel(method), pattern, result.mean_mbps,
                 result.cv, options.trials, "", "",
                 options.trace.attrib && attrib.filled ? core::AttribJsonField(attrib) : "");
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n(all values MB/s; ra normalized by number of CPs)\n");
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_FIG_SWEEP_COMMON_H_
