// Shared driver for the sensitivity sweeps (Figures 5-8): ra/rn/rb/rc with
// 8 KB records while one machine dimension varies. Methods are named by
// their FileSystemRegistry keys; the default pair is the paper's DDIO-vs-TC
// comparison.

#ifndef DDIO_BENCH_FIG_SWEEP_COMMON_H_
#define DDIO_BENCH_FIG_SWEEP_COMMON_H_

#include <cctype>
#include <cstdio>
#include <iostream>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/report.h"
#include "src/core/runner.h"

namespace ddio::bench {

// Runs the sweep patterns under every named method for every value of the
// varied dimension. `configure(cfg, value)` applies the dimension.
inline void RunSweep(const BenchOptions& options, const char* dimension_name,
                     const std::vector<std::uint32_t>& values, fs::LayoutKind layout,
                     const std::function<void(core::ExperimentConfig&, std::uint32_t)>& configure,
                     const std::vector<std::string>& methods = {"ddio", "tc"}) {
  static const char* kPatterns[] = {"ra", "rn", "rb", "rc"};
  std::vector<std::string> headers = {dimension_name};
  for (const std::string& method : methods) {
    std::string label = method;
    for (char& c : label) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    for (const char* pattern : kPatterns) {
      headers.push_back(label + " " + pattern);
    }
  }
  core::Table table(headers);
  JsonPointSink json(options.json_path);
  for (std::uint32_t value : values) {
    std::vector<std::string> row = {std::to_string(value)};
    for (const std::string& method : methods) {
      for (const char* pattern : kPatterns) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.record_bytes = 8192;
        cfg.layout = layout;
        ApplyMethod(cfg, method);
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        configure(cfg, value);
        auto result = core::RunExperiment(cfg);
        row.push_back(core::Fixed(result.mean_mbps, 2));
        json.Add(dimension_name, value, MethodLabel(method), pattern, result.mean_mbps,
                 result.cv, cfg.trials);
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n(all values MB/s; ra normalized by number of CPs)\n");
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_FIG_SWEEP_COMMON_H_
