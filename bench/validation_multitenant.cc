// Validation: multi-tenant interference — the serving costs the paper's
// single-job model structurally cannot see.
//
// Each cell shares one machine (8 CPs, 4 IOPs, 4 disks) among N tenants:
// tenant 0 runs disk-directed I/O (large sorted batches), the others run
// traditional caching (paced per-record requests, the latency-sensitive
// profile). For every tenant we measure per-phase SLOWDOWN = shared elapsed
// time / isolated elapsed time, where the isolated run executes the same
// tenant profile alone on the same machine with the same seed. p50/p99 over
// trials x reps quantify the interference, per disk scheduler
// (fifo | fair | deadline) and disk model (hp97560 | ssd).
//
// The headline check: `fair` must bound the worst tenant's slowdown tighter
// than `fifo` wherever DDIO's batches would otherwise starve the paced TC
// tenants. Results are committed as BENCH_multitenant.json.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/tenant/tenant_scheduler.h"
#include "src/tenant/tenant_spec.h"

namespace {

using ddio::tenant::MultiTenantTrialResult;
using ddio::tenant::TenantSpec;

constexpr std::uint64_t kBaseSeed = 1000;

// Tenant 0 is the disk-directed batch tenant; everyone else is a paced TC
// tenant. Deadline fields only appear under sched=deadline (the grammar
// rejects them elsewhere): the TC tenants declare tight deadlines, the batch
// tenant keeps the 100 ms default.
std::string ProfileOf(std::size_t tenant, const std::string& sched) {
  std::string fields = tenant == 0 ? "w=1,pat=rb,method=ddio,reps=2"
                                   : "w=1,pat=rb,method=tc,reps=2";
  if (sched == "deadline" && tenant != 0) {
    fields += ",deadline=5ms";
  }
  return fields;
}

std::string SpecTextOf(std::size_t tenants, const std::string& sched) {
  std::string text = "sched=" + sched + ";";
  for (std::size_t t = 0; t < tenants; ++t) {
    text += "t" + std::to_string(t) + ":" + ProfileOf(t, sched) + ";";
  }
  text.pop_back();  // The grammar rejects a trailing empty segment.
  return text;
}

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t index = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size()))) ;
  return samples[std::min(index == 0 ? 0 : index - 1, samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble(
      "Validation: multi-tenant interference (per-tenant slowdown vs isolated)",
      "tenant 0 = ddio batches, others = paced tc; fair should bound the worst tenant",
      options);

  core::ExperimentConfig base;
  base.machine.num_cps = 8;
  base.machine.num_iops = 4;
  base.machine.num_disks = 4;
  base.file_bytes = options.file_bytes();
  base.record_bytes = 8192;
  base.trials = options.trials;

  const std::size_t tenant_counts[] = {1, 2, 4, 8};
  const std::string scheds[] = {"fifo", "fair", "deadline"};
  const std::string disks[] = {"hp97560", "ssd"};

  // Isolated per-phase elapsed times, cached by (disk, profile, trial):
  // every cell's slowdown divides by the same baselines.
  std::map<std::string, std::vector<double>> isolated_cache;
  auto isolated_elapsed = [&](const std::string& disk_name, const std::string& profile,
                              std::uint32_t trial) -> const std::vector<double>& {
    const std::string key = disk_name + "|" + profile + "|" + std::to_string(trial);
    auto it = isolated_cache.find(key);
    if (it != isolated_cache.end()) {
      return it->second;
    }
    core::ExperimentConfig cfg = base;
    std::string error;
    if (!disk::DiskSpec::TryParse(disk_name, &cfg.machine.disk, &error)) {
      std::fprintf(stderr, "disk spec: %s\n", error.c_str());
      std::exit(2);
    }
    TenantSpec solo;
    // An isolated profile never carries deadline= (that field is only legal
    // under sched=deadline, and the scheduler is irrelevant with one tenant).
    if (!TenantSpec::TryParse("t0:" + profile, &solo, &error)) {
      std::fprintf(stderr, "isolated spec: %s\n", error.c_str());
      std::exit(2);
    }
    const MultiTenantTrialResult result =
        tenant::RunMultiTenantTrial(cfg, solo, kBaseSeed + trial);
    std::vector<double> elapsed;
    for (const core::OpStats& stats : result.tenants[0].phases) {
      elapsed.push_back(static_cast<double>(stats.elapsed_ns()));
    }
    return isolated_cache.emplace(key, std::move(elapsed)).first->second;
  };

  core::Table table({"disk", "sched", "tenants", "worst p50", "worst p99", "tc p99",
                     "ddio p99"});
  std::vector<std::string> json_cells;

  for (const std::string& disk_name : disks) {
    for (const std::string& sched : scheds) {
      for (const std::size_t tenants : tenant_counts) {
        const std::string spec_text = SpecTextOf(tenants, sched);
        TenantSpec spec;
        std::string error;
        if (!TenantSpec::TryParse(spec_text, &spec, &error) || !spec.Validate(&error)) {
          std::fprintf(stderr, "tenant spec: %s\n", error.c_str());
          return 2;
        }
        core::ExperimentConfig cfg = base;
        if (!disk::DiskSpec::TryParse(disk_name, &cfg.machine.disk, &error)) {
          std::fprintf(stderr, "disk spec: %s\n", error.c_str());
          return 2;
        }

        // Shared runs: independent trials, index-addressed for determinism.
        std::vector<MultiTenantTrialResult> trials(options.trials);
        core::ParallelFor(options.jobs, options.trials, [&](std::size_t t) {
          trials[t] = tenant::RunMultiTenantTrial(
              cfg, spec, kBaseSeed + static_cast<std::uint64_t>(t));
        });

        // Per-tenant slowdown samples over trials x reps.
        std::vector<std::vector<double>> slowdowns(tenants);
        for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
          for (std::size_t t = 0; t < tenants; ++t) {
            // The isolated baseline profile must match the shared one modulo
            // the deadline field, which does not exist outside
            // sched=deadline; strip it for the cache key.
            const std::vector<double>& baseline =
                isolated_elapsed(disk_name, ProfileOf(t, "fifo"), trial);
            const std::vector<core::OpStats>& phases = trials[trial].tenants[t].phases;
            for (std::size_t p = 0; p < phases.size() && p < baseline.size(); ++p) {
              if (baseline[p] > 0) {
                slowdowns[t].push_back(static_cast<double>(phases[p].elapsed_ns()) /
                                       baseline[p]);
              }
            }
          }
        }

        double worst_p50 = 0.0;
        double worst_p99 = 0.0;
        double tc_p99 = 0.0;    // Worst over the paced tc tenants (1..N-1).
        double ddio_p99 = 0.0;  // The batch tenant.
        std::string per_tenant_json;
        for (std::size_t t = 0; t < tenants; ++t) {
          const double p50 = Percentile(slowdowns[t], 0.50);
          const double p99 = Percentile(slowdowns[t], 0.99);
          worst_p50 = std::max(worst_p50, p50);
          worst_p99 = std::max(worst_p99, p99);
          (t == 0 ? ddio_p99 : tc_p99) = std::max(t == 0 ? ddio_p99 : tc_p99, p99);
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "{\"tenant\": %zu, \"method\": \"%s\", \"p50\": %.4f, "
                        "\"p99\": %.4f}%s",
                        t, t == 0 ? "ddio" : "tc", p50, p99,
                        t + 1 < tenants ? ", " : "");
          per_tenant_json += buf;
        }

        table.AddRow({disk_name, sched, std::to_string(tenants), core::Fixed(worst_p50, 3),
                      core::Fixed(worst_p99, 3),
                      tenants > 1 ? core::Fixed(tc_p99, 3) : "-",
                      core::Fixed(ddio_p99, 3)});
        char cell[256];
        std::snprintf(cell, sizeof(cell),
                      "    {\"disk\": \"%s\", \"sched\": \"%s\", \"tenants\": %zu, "
                      "\"trials\": %u, \"worst_p50\": %.4f, \"worst_p99\": %.4f, "
                      "\"per_tenant\": [",
                      disk_name.c_str(), sched.c_str(), tenants, options.trials, worst_p50,
                      worst_p99);
        json_cells.push_back(std::string(cell) + per_tenant_json + "]}");
      }
    }
  }
  table.Print(std::cout);

  if (!options.json_path.empty()) {
    std::FILE* f = std::fopen(options.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", options.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"cells\": [\n");
    for (std::size_t i = 0; i < json_cells.size(); ++i) {
      std::fprintf(f, "%s%s\n", json_cells[i].c_str(),
                   i + 1 < json_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
