// Table 1: the simulator parameters. Prints the machine configuration this
// reproduction uses, next to the values the paper lists, and the derived
// rates the rest of the evaluation depends on. The storage device is
// resolved through the DiskModelRegistry — pass --disk=SPEC to print any
// model's parameters (the paper column cites the HP 97560 it used) — and the
// interconnect through the TopologyRegistry (--net=SPEC).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/config.h"
#include "src/core/report.h"
#include "src/disk/disk_registry.h"
#include "src/net/net_spec.h"

int main(int argc, char** argv) {
  using ddio::core::Fixed;
  ddio::core::MachineConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--disk=", 7) == 0) {
      std::string error;
      if (!ddio::disk::DiskSpec::TryParse(argv[i] + 7, &config.disk, &error)) {
        std::fprintf(stderr, "--disk: %s\n", error.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--net=", 6) == 0) {
      std::string error;
      if (!ddio::net::NetSpec::TryParse(argv[i] + 6, &config.net.topology, &error)) {
        std::fprintf(stderr, "--net: %s\n", error.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--disk=SPEC] [--net=SPEC]  (disks: %s; topologies: %s)\n",
                   argv[0],
                   ddio::disk::DiskModelRegistry::BuiltIns().NamesJoined(", ").c_str(),
                   ddio::net::TopologyRegistry::BuiltIns().NamesJoined(", ").c_str());
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  std::string net_error;
  if (!config.net.topology.Validate(config.num_nodes(), &net_error)) {
    std::fprintf(stderr, "--net: %s\n", net_error.c_str());
    return 2;
  }
  auto disk = config.disk.Build();
  auto topology = config.net.topology.Build(config.num_nodes());

  std::printf("== Table 1: Parameters for simulator ==\n\n");
  ddio::core::Table table({"parameter", "this reproduction", "paper"});
  table.AddRow({"MIMD, distributed-memory", std::to_string(config.num_nodes()) + " processors",
                "32 processors"});
  table.AddRow({"Compute processors (CPs)", std::to_string(config.num_cps), "16 *"});
  table.AddRow({"I/O processors (IOPs)", std::to_string(config.num_iops), "16 *"});
  table.AddRow({"CPU speed, type", std::to_string(config.cpu_mhz) + " MHz, RISC",
                "50 MHz, RISC"});
  table.AddRow({"Disks", std::to_string(config.num_disks), "16 *"});
  table.AddRow({"Disk type", disk->name(), "HP 97560"});
  table.AddRow({"Disk capacity",
                Fixed(static_cast<double>(disk->CapacityBytes()) / 1e9, 2) + " GB",
                "1.3 GB"});
  table.AddRow({"Disk peak transfer rate",
                Fixed(disk->SustainedBandwidthBytesPerSec() / 1e6, 2) + " MB/s",
                "2.34 Mbytes/s"});
  table.AddRow({"File-system block size", std::to_string(config.block_bytes / 1024) + " KB",
                "8 KB"});
  table.AddRow({"I/O buses (one per IOP)", std::to_string(config.num_iops), "16 *"});
  table.AddRow({"I/O bus type", "SCSI", "SCSI"});
  table.AddRow({"I/O bus peak bandwidth",
                Fixed(static_cast<double>(config.bus_bandwidth_bytes_per_sec) / 1e6, 0) +
                    " MB/s",
                "10 Mbytes/s"});
  table.AddRow({"Interconnect topology", topology->Describe(), "6x6 torus"});
  table.AddRow({"Interconnect bandwidth",
                Fixed(static_cast<double>(config.net.link_bandwidth_bytes_per_sec) / 1e6, 0) +
                    "e6 bytes/s bidirectional",
                "200e6 bytes/s bidirectional"});
  table.AddRow({"Interconnect latency",
                std::to_string(config.net.per_hop_latency_ns) + " ns per router",
                "20 ns per router"});
  table.AddRow({"Routing", "store-and-forward NIC model (see README: Performance methodology)",
                "wormhole"});
  table.Print(std::cout);

  std::printf("\nDisk model parameters (%s):\n", config.disk.text().c_str());
  for (const auto& [param, value] : disk->DescribeParams()) {
    std::printf("  %-24s %s\n", param.c_str(), value.c_str());
  }
  std::printf("\nDerived rates:\n");
  std::printf("  aggregate disk peak:    %s MB/s for %u disks (paper: 37.5 with 16 HP 97560)\n",
              Fixed(disk->SustainedBandwidthBytesPerSec() * config.num_disks / 1e6, 1).c_str(),
              config.num_disks);
  return 0;
}
