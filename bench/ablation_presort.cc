// Ablation A1: the value of presorting the block list by physical location
// (the optimization "available in disk-directed I/O to an extent not
// possible in traditional caching or two-phase I/O"). Paper: 41-50% boost on
// the random-blocks layout; no effect on the contiguous layout.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A1: DDIO block-list presort",
                       "paper Section 6: presort boosts random-blocks by 41-50%", options);
  core::Table table({"layout", "pattern", "DDIO(sort)", "DDIO(nosort)", "boost %"});
  for (fs::LayoutKind layout : {fs::LayoutKind::kRandomBlocks, fs::LayoutKind::kContiguous}) {
    for (const char* pattern : {"rb", "rc", "wb", "wc"}) {
      core::ExperimentConfig cfg;
      cfg.pattern = pattern;
      cfg.layout = layout;
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      options.ApplyMachine(&cfg.machine);
      cfg.method = core::Method::kDiskDirected;
      auto sorted = core::RunExperiment(cfg, options.jobs);
      cfg.method = core::Method::kDiskDirectedNoSort;
      auto unsorted = core::RunExperiment(cfg, options.jobs);
      const double boost = (sorted.mean_mbps / unsorted.mean_mbps - 1.0) * 100.0;
      table.AddRow({fs::LayoutName(layout), pattern, core::Fixed(sorted.mean_mbps, 2),
                    core::Fixed(unsorted.mean_mbps, 2), core::Fixed(boost, 1)});
    }
  }
  table.Print(std::cout);
  return 0;
}
