// attrib_gap: re-runs a slice of the Figure-3 grid (random-blocks layout)
// with the time-attribution plane on and decomposes WHERE the TC-vs-DDIO gap
// lives: disk positioning, disk transfer, NIC serialization, network waits,
// cache stalls, or compute. The paper argues the gap is disk-arm scheduling
// (TC's request-order arrivals defeat the disk scheduler that DDIO's
// full-knowledge presort feeds); the attribution buckets make that claim a
// measured number instead of an inference, and the SSD cells show the gap
// collapsing once positioning time disappears.
//
// Cells: {hp97560, ssd} x {tc, ddio} x {(rb,8192), (wb,8192), (rc,8)}.
// With --jobs=N the cells run concurrently; output is emitted from a
// cell-indexed vector in serial order, so stdout and --json are
// byte-identical for any job count.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"

namespace {

struct Cell {
  const char* disk;  // "" = the paper's hp97560 default.
  const char* method;
  const char* pattern;
  std::uint32_t record_bytes;
};

double Ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  // Attribution is the whole point of this bench: always on, independent of
  // --trace (which may add nothing or be used to widen the planes).
  options.trace.attrib = true;
  bench::PrintPreamble(
      "Attribution: where the TC-vs-DDIO gap lives (random-blocks layout)",
      "paper Sec 4.3: TC loses to disk-arm positioning; gap should collapse on ssd",
      options);

  static const Cell kCells[] = {
      {"", "tc", "rb", 8192},    {"", "ddio", "rb", 8192},
      {"", "tc", "wb", 8192},    {"", "ddio", "wb", 8192},
      {"", "tc", "rc", 8},       {"", "ddio", "rc", 8},
      {"ssd", "tc", "rb", 8192}, {"ssd", "ddio", "rb", 8192},
      {"ssd", "tc", "wb", 8192}, {"ssd", "ddio", "wb", 8192},
      {"ssd", "tc", "rc", 8},    {"ssd", "ddio", "rc", 8},
  };
  const std::size_t n = sizeof(kCells) / sizeof(kCells[0]);

  std::vector<core::ExperimentConfig> cells;
  for (const Cell& cell : kCells) {
    core::ExperimentConfig cfg;
    cfg.pattern = cell.pattern;
    cfg.record_bytes = cell.record_bytes;
    cfg.layout = fs::LayoutKind::kRandomBlocks;
    bench::ApplyMethod(cfg, cell.method);
    cfg.trials = options.trials;
    cfg.file_bytes = options.file_bytes();
    options.ApplyExperiment(&cfg);
    if (cell.disk[0] != '\0') {
      std::vector<disk::DiskSpec> specs;
      std::string error;
      if (!disk::DiskSpec::TryParseList(cell.disk, &specs, &error)) {
        core::SpecError("--disk", error);
      }
      cfg.machine.SetDisks(std::move(specs));
    }
    cells.push_back(std::move(cfg));
  }

  core::TrialExecutor executor(options.jobs);
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });

  core::Table table({"disk", "method", "pattern", "record", "MB/s", "position ms",
                     "transfer ms", "nic ms", "network ms", "stall ms", "compute ms"});
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& cell = kCells[i];
    const core::ExperimentResult& result = results[i];
    const core::PhaseAttribution& attrib = result.trials.back().attrib;
    table.AddRow({cell.disk[0] != '\0' ? cell.disk : "hp97560", cell.method, cell.pattern,
                  std::to_string(cell.record_bytes), core::Fixed(result.mean_mbps, 2),
                  core::Fixed(Ms(attrib.disk_position_ns), 2),
                  core::Fixed(Ms(attrib.disk_transfer_ns), 2), core::Fixed(Ms(attrib.nic_ns), 2),
                  core::Fixed(Ms(attrib.network_ns), 2),
                  core::Fixed(Ms(attrib.cache_stall_ns), 2),
                  core::Fixed(Ms(attrib.compute_ns), 2)});
  }
  table.Print(std::cout);

  // The gap rows: per (disk, pattern, record) pair, TC-vs-DDIO throughput
  // ratio and the bucket where TC spends the most extra time.
  std::printf("\nTC-vs-DDIO gap attribution (last trial):\n");
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const core::ExperimentResult& tc = results[i];
    const core::ExperimentResult& ddio = results[i + 1];
    const core::PhaseAttribution& ta = tc.trials.back().attrib;
    const core::PhaseAttribution& da = ddio.trials.back().attrib;
    const double ratio = tc.mean_mbps > 0 ? ddio.mean_mbps / tc.mean_mbps : 0.0;
    struct Delta {
      const char* name;
      double ms;
    } deltas[] = {
        {"disk-position", Ms(ta.disk_position_ns) - Ms(da.disk_position_ns)},
        {"disk-transfer", Ms(ta.disk_transfer_ns) - Ms(da.disk_transfer_ns)},
        {"nic", Ms(ta.nic_ns) - Ms(da.nic_ns)},
        {"network", Ms(ta.network_ns) - Ms(da.network_ns)},
        {"cache-stall", Ms(ta.cache_stall_ns) - Ms(da.cache_stall_ns)},
        {"compute", Ms(ta.compute_ns) - Ms(da.compute_ns)},
    };
    const Delta* top = &deltas[0];
    for (const Delta& d : deltas) {
      if (d.ms > top->ms) {
        top = &d;
      }
    }
    std::printf("  %-8s %-3s record %-5u: ddio/tc = %.2fx; TC's largest extra bucket: %s "
                "(+%.2f ms)\n",
                kCells[i].disk[0] != '\0' ? kCells[i].disk : "hp97560", kCells[i].pattern,
                kCells[i].record_bytes, ratio, top->name, top->ms);
  }

  // Custom JSON (cells + paired gaps), committed as BENCH_trace.json.
  if (!options.json_path.empty()) {
    std::FILE* f = std::fopen(options.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", options.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"cells\": [\n");
    for (std::size_t i = 0; i < n; ++i) {
      const Cell& cell = kCells[i];
      const core::ExperimentResult& result = results[i];
      std::fprintf(f,
                   "    {\"disk\": \"%s\", \"method\": \"%s\", \"pattern\": \"%s\", "
                   "\"record\": %u, \"mean_mbps\": %.4f, \"cv\": %.4f, \"trials\": %u, %s}%s\n",
                   cell.disk[0] != '\0' ? cell.disk : "hp97560", cell.method, cell.pattern,
                   cell.record_bytes, result.mean_mbps, result.cv, options.trials,
                   core::AttribJsonField(result.trials.back().attrib).c_str(),
                   i + 1 < n ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"gaps\": [\n");
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      const core::ExperimentResult& tc = results[i];
      const core::ExperimentResult& ddio = results[i + 1];
      const core::PhaseAttribution& ta = tc.trials.back().attrib;
      const core::PhaseAttribution& da = ddio.trials.back().attrib;
      std::fprintf(
          f,
          "    {\"disk\": \"%s\", \"pattern\": \"%s\", \"record\": %u, "
          "\"ddio_over_tc\": %.4f, \"extra_ms\": {\"disk_position\": %.4f, "
          "\"disk_transfer\": %.4f, \"nic\": %.4f, \"network\": %.4f, "
          "\"cache_stall\": %.4f, \"compute\": %.4f}}%s\n",
          kCells[i].disk[0] != '\0' ? kCells[i].disk : "hp97560", kCells[i].pattern,
          kCells[i].record_bytes, tc.mean_mbps > 0 ? ddio.mean_mbps / tc.mean_mbps : 0.0,
          Ms(ta.disk_position_ns) - Ms(da.disk_position_ns),
          Ms(ta.disk_transfer_ns) - Ms(da.disk_transfer_ns), Ms(ta.nic_ns) - Ms(da.nic_ns),
          Ms(ta.network_ns) - Ms(da.network_ns), Ms(ta.cache_stall_ns) - Ms(da.cache_stall_ns),
          Ms(ta.compute_ns) - Ms(da.compute_ns), i + 2 < n ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return 0;
}
