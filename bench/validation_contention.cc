// Validation: the interconnect-substitution claim of DESIGN.md §2.
//
// The paper's machine used wormhole routing with per-link flit contention;
// this reproduction models endpoint (NIC) bandwidth only, arguing that at
// <= 37.5 MB/s aggregate against 200 MB/s links, in-network contention is
// negligible. This bench turns the full per-link contention model ON and
// reruns the headline configurations: the deltas quantify the error the
// substitution introduces.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Validation: per-link wormhole contention vs NIC-only model",
                       "DESIGN.md substitution — expected delta well under 5%", options);
  core::Table table({"pattern", "rec", "method", "NIC-only", "with links", "delta %"});
  struct Case {
    const char* pattern;
    std::uint32_t record;
    core::Method method;
  };
  const Case cases[] = {
      {"rb", 8192, core::Method::kDiskDirected},
      {"ra", 8192, core::Method::kDiskDirected},
      {"rc", 8, core::Method::kDiskDirected},
      {"rb", 8192, core::Method::kTraditionalCaching},
      {"wb", 8192, core::Method::kDiskDirected},
  };
  for (const Case& c : cases) {
    auto run = [&](bool contention) {
      core::ExperimentConfig cfg;
      cfg.pattern = c.pattern;
      cfg.record_bytes = c.record;
      cfg.method = c.method;
      cfg.machine.net.model_link_contention = contention;
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      options.ApplyMachine(&cfg.machine);
      return core::RunExperiment(cfg, options.jobs).mean_mbps;
    };
    const double nic_only = run(false);
    const double with_links = run(true);
    table.AddRow({c.pattern, std::to_string(c.record), core::MethodName(c.method),
                  core::Fixed(nic_only, 2), core::Fixed(with_links, 2),
                  core::Fixed((with_links / nic_only - 1.0) * 100.0, 2)});
  }
  table.Print(std::cout);
  return 0;
}
