// Figure 6: throughput as the number of IOPs (and SCSI busses) varies, with
// 16 disks redistributed over them, 16 CPs, contiguous layout, 8 KB records.
//
// Paper shape: performance falls with fewer IOPs due to bus contention (16
// disks x 2.34 MB/s >> one 10 MB/s bus), ultimately bus-limited at 1-2 IOPs
// (max = 10 MB/s x IOPs); disk-limited at 4+ IOPs. DDIO >= TC throughout; TC
// still struggles with rb.

#include "bench/bench_util.h"
#include "bench/fig_sweep_common.h"

int main(int argc, char** argv) {
  auto options = ddio::bench::BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Figure 6: varying the number of IOPs (and busses), 16 disks total",
      "bus-limited (10 MB/s x IOPs) at 1-2 IOPs; disk-limited (37.5) at 4+ IOPs", options);
  ddio::bench::RunSweep(options, "IOPs", {1, 2, 4, 8, 16}, ddio::fs::LayoutKind::kContiguous,
                        [](ddio::core::ExperimentConfig& cfg, std::uint32_t iops) {
                          cfg.machine.num_iops = iops;
                        });
  return 0;
}
