// Ablation A8: traditional caching's cache size and prefetch policy.
//
// The paper sizes the cache "to double-buffer an independent stream of
// requests from each CP to each disk" (footnote 3: two buffers per disk per
// CP) and prefetches one block ahead. This bench varies both: smaller
// caches thrash under concurrent streams; larger ones cannot fix the
// per-request overhead; disabling prefetch removes the pipeline that hides
// disk latency behind the request-reply round trip.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A8: TC cache sizing and prefetch (contiguous layout)",
                       "paper footnote 3: two buffers per disk per CP", options);
  core::Table table({"bufs/CP/disk", "prefetch", "rb MB/s", "rc MB/s", "ra MB/s"});
  for (std::uint32_t buffers : {1u, 2u, 4u}) {
    for (bool prefetch : {true, false}) {
      auto run = [&](const char* pattern) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.method = core::Method::kTraditionalCaching;
        cfg.tc_buffers_per_cp_per_disk = buffers;
        cfg.tc_prefetch = prefetch;
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        options.ApplyMachine(&cfg.machine);
        return core::RunExperiment(cfg, options.jobs).mean_mbps;
      };
      table.AddRow({std::to_string(buffers), prefetch ? "on" : "off",
                    core::Fixed(run("rb"), 2), core::Fixed(run("rc"), 2),
                    core::Fixed(run("ra"), 2)});
    }
  }
  table.Print(std::cout);
  return 0;
}
