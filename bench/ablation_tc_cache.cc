// Ablation A8: traditional caching's cache — sizing, prefetch, and the
// pluggable policy grid.
//
// The paper sizes the cache "to double-buffer an independent stream of
// requests from each CP to each disk" (footnote 3: two buffers per disk per
// CP) and prefetches one block ahead. Part 1 varies both: smaller caches
// thrash under concurrent streams; larger ones cannot fix the per-request
// overhead; disabling prefetch removes the pipeline that hides disk latency
// behind the request-reply round trip.
//
// Part 2 sweeps the --tc-cache policy grid — {lru, clock, slru} x read-ahead
// {1, 4} x write-behind {full, hi:50} — on the random-blocks layout against
// two storage devices (the paper's HP 97560 and a parallel-channel SSD), with
// DDIO(sort) as the reference. "gap closed" is how much of the TC-vs-DDIO
// throughput gap each variant recovers over the paper's default cache
// (lru:ra=1,wb=full): the paper's headline is that no cache policy closes it
// on a seek-bound disk, and the grid quantifies exactly how far tuning gets.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/fs/layout.h"
#include "src/tc/cache_policy.h"

namespace {

struct GridPoint {
  double mean_mbps = 0.0;
  double cv = 0.0;
};

// Percent of the (ddio - base) gap recovered by `mbps`; "-" when there is no
// gap to close (base already at or above DDIO).
std::string GapClosed(double mbps, double base, double ddio) {
  if (ddio <= base) {
    return "-";
  }
  return ddio::core::Fixed(100.0 * (mbps - base) / (ddio - base), 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A8: TC cache sizing, prefetch, and policy grid",
                       "paper footnote 3: two buffers per disk per CP", options);
  bench::JsonPointSink json(options.json_path);

  std::printf("-- part 1: cache sizing and prefetch (contiguous layout) --\n");
  core::Table sizing({"bufs/CP/disk", "prefetch", "rb MB/s", "rc MB/s", "ra MB/s"});
  for (std::uint32_t buffers : {1u, 2u, 4u}) {
    for (bool prefetch : {true, false}) {
      auto run = [&](const char* pattern) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.method = core::Method::kTraditionalCaching;
        cfg.tc_buffers_per_cp_per_disk = buffers;
        cfg.tc_prefetch = prefetch;
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        options.ApplyMachine(&cfg.machine);
        return core::RunExperiment(cfg, options.jobs).mean_mbps;
      };
      sizing.AddRow({std::to_string(buffers), prefetch ? "on" : "off",
                     core::Fixed(run("rb"), 2), core::Fixed(run("rc"), 2),
                     core::Fixed(run("ra"), 2)});
    }
  }
  sizing.Print(std::cout);

  // Part 2: the policy grid, random-blocks layout (the paper's hard case and
  // the BENCH_disks headline configuration). The read column is the paper's
  // worst TC case — 8-byte cyclic records — where caching and read-ahead have
  // the most room to help; the write column is 8 KB blocks, where the
  // write-behind mode decides whether the disk sees a sorted sweep.
  static const char* kPatterns[] = {"rc", "wb"};
  static const std::uint32_t kRecordBytes[] = {8, 8192};
  std::vector<std::string> specs;
  for (const char* policy : {"lru", "clock", "slru"}) {
    for (const char* ra : {"1", "4"}) {
      for (const char* wb : {"full", "hi:50"}) {
        specs.push_back(std::string(policy) + ":ra=" + ra + ",wb=" + wb);
      }
    }
  }
  std::vector<disk::DiskSpec> devices = options.disks;
  if (devices.empty()) {
    // Default grid devices: the paper's drive and a parallel-channel SSD.
    std::string error;
    devices.resize(2);
    if (!disk::DiskSpec::TryParse("hp97560", &devices[0], &error) ||
        !disk::DiskSpec::TryParse("ssd:chan=4,rlat=80us,wlat=200us", &devices[1], &error)) {
      std::fprintf(stderr, "internal: %s\n", error.c_str());
      return 1;
    }
  }

  std::uint64_t cell = 0;
  for (const disk::DiskSpec& device : devices) {
    std::printf("\n-- part 2: policy grid on %s (random-blocks layout) --\n",
                device.text().c_str());
    auto run = [&](const char* method_key, int p, const std::string& cache_spec) {
      core::ExperimentConfig cfg;
      cfg.pattern = kPatterns[p];
      cfg.record_bytes = kRecordBytes[p];
      cfg.layout = fs::LayoutKind::kRandomBlocks;
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      cfg.machine.SetDisks({device});
      if (std::string(method_key) == "ddio") {
        cfg.method = core::Method::kDiskDirected;
      } else {
        cfg.method = core::Method::kTraditionalCaching;
        std::string error;
        if (!tc::CacheSpec::TryParse(cache_spec, &cfg.tc_cache, &error)) {
          std::fprintf(stderr, "internal: %s\n", error.c_str());
          std::exit(1);
        }
      }
      const core::ExperimentResult result = core::RunExperiment(cfg, options.jobs);
      return GridPoint{result.mean_mbps, result.cv};
    };

    GridPoint ddio_ref[2];
    GridPoint tc_base[2];
    for (int p = 0; p < 2; ++p) {
      ddio_ref[p] = run("ddio", p, "");
      tc_base[p] = run("tc", p, specs.front());
      json.Add("cell", cell++, "DDIO(sort)", kPatterns[p], ddio_ref[p].mean_mbps,
               ddio_ref[p].cv, options.trials, device.model(), "");
    }

    core::Table grid({"tc cache spec", "rc8 MB/s", "gap closed", "wb MB/s", "gap closed"});
    grid.AddRow({"DDIO(sort) reference", core::Fixed(ddio_ref[0].mean_mbps, 2), "100.0%",
                 core::Fixed(ddio_ref[1].mean_mbps, 2), "100.0%"});
    for (const std::string& spec : specs) {
      GridPoint point[2];
      for (int p = 0; p < 2; ++p) {
        point[p] = spec == specs.front() ? tc_base[p] : run("tc", p, spec);
        json.Add("cell", cell++, "TC", kPatterns[p], point[p].mean_mbps, point[p].cv,
                 options.trials, device.model(), spec);
      }
      grid.AddRow({spec, core::Fixed(point[0].mean_mbps, 2),
                   GapClosed(point[0].mean_mbps, tc_base[0].mean_mbps, ddio_ref[0].mean_mbps),
                   core::Fixed(point[1].mean_mbps, 2),
                   GapClosed(point[1].mean_mbps, tc_base[1].mean_mbps, ddio_ref[1].mean_mbps)});
    }
    grid.Print(std::cout);
  }
  return 0;
}
