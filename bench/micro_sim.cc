// Micro-benchmarks (google-benchmark) of the simulation substrate: event
// scheduling, coroutine spawn/join, synchronization primitives, the network
// transport, and the disk mechanism model. These bound how fast the
// experiment harness can run and catch regressions in the engine hot paths.

#include <benchmark/benchmark.h>

#include "src/disk/bus.h"
#include "src/disk/disk_registry.h"
#include "src/disk/disk_unit.h"
#include "src/net/network.h"
#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"

namespace {

using namespace ddio;

void BM_EngineDelayEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    engine.Spawn([](sim::Engine& e, std::int64_t n) -> sim::Task<> {
      for (std::int64_t i = 0; i < n; ++i) {
        co_await e.Delay(10);
      }
    }(engine, state.range(0)));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineDelayEvents)->Arg(10000);

void BM_TaskSpawnJoin(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    engine.Spawn([](sim::Engine& e, std::int64_t n) -> sim::Task<> {
      std::vector<sim::Task<>> tasks;
      tasks.reserve(n);
      for (std::int64_t i = 0; i < n; ++i) {
        tasks.push_back([](sim::Engine& eng) -> sim::Task<> {
          co_await eng.Delay(1);
        }(e));
      }
      co_await sim::WhenAll(e, std::move(tasks));
    }(engine, state.range(0)));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaskSpawnJoin)->Arg(1000);

void BM_SemaphoreHandoff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Semaphore sem(engine, 1);
    for (int w = 0; w < 4; ++w) {
      engine.Spawn([](sim::Engine& e, sim::Semaphore& s, std::int64_t n) -> sim::Task<> {
        for (std::int64_t i = 0; i < n; ++i) {
          co_await s.Acquire();
          co_await e.Delay(1);
          s.Release();
        }
      }(engine, sem, state.range(0)));
    }
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_SemaphoreHandoff)->Arg(2000);

void BM_ChannelSendReceive(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Channel<int> channel(engine);
    engine.Spawn([](sim::Channel<int>& ch, std::int64_t n) -> sim::Task<> {
      for (std::int64_t i = 0; i < n; ++i) {
        auto v = co_await ch.Receive();
        benchmark::DoNotOptimize(v);
      }
    }(channel, state.range(0)));
    engine.Spawn([](sim::Engine& e, sim::Channel<int>& ch, std::int64_t n) -> sim::Task<> {
      for (std::int64_t i = 0; i < n; ++i) {
        ch.Send(static_cast<int>(i));
        co_await e.Yield();
      }
    }(engine, channel, state.range(0)));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelSendReceive)->Arg(10000);

void BM_NetworkMessages(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    net::Network network(engine, 32);
    engine.Spawn([](net::Network& n, std::int64_t count) -> sim::Task<> {
      for (std::int64_t i = 0; i < count; ++i) {
        net::Message m;
        m.src = static_cast<std::uint16_t>(i % 16);
        m.dst = static_cast<std::uint16_t>(16 + i % 16);
        m.data_bytes = 8192;
        m.payload = net::CompletionNote{0};
        co_await n.Send(std::move(m));
      }
    }(network, state.range(0)));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetworkMessages)->Arg(5000);

void BM_DiskSequentialAccess(benchmark::State& state) {
  for (auto _ : state) {
    auto disk = disk::DiskModelRegistry::BuiltIns().Create("hp97560");
    sim::SimTime t = 0;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      t = disk->Access(t, static_cast<std::uint64_t>(i) * 16, 16, false).completion;
    }
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskSequentialAccess)->Arg(10000);

void BM_DiskRandomAccess(benchmark::State& state) {
  sim::Engine seed_engine(7);
  std::vector<std::uint64_t> lbns;
  for (int i = 0; i < 1024; ++i) {
    lbns.push_back(seed_engine.rng().Uniform(0, 160'000) * 16);
  }
  for (auto _ : state) {
    auto disk = disk::DiskModelRegistry::BuiltIns().Create("hp97560");
    sim::SimTime t = 0;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      t = disk->Access(t, lbns[static_cast<std::size_t>(i) % lbns.size()], 16, false).completion;
    }
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskRandomAccess)->Arg(1024);

void BM_DiskUnitPipeline(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    disk::ScsiBus bus(engine, "bus");
    disk::DiskUnit unit(engine, disk::DiskModelRegistry::BuiltIns().Create("hp97560"), bus, 0);
    unit.Start();
    engine.Spawn([](sim::Engine& e, disk::DiskUnit& d, std::int64_t n) -> sim::Task<> {
      sim::Semaphore window(e, 2);
      sim::CountdownLatch latch(e, static_cast<std::uint64_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        co_await window.Acquire();
        e.Spawn([](disk::DiskUnit& dd, sim::Semaphore& w, sim::CountdownLatch& l,
                   std::uint64_t lbn) -> sim::Task<> {
          co_await dd.Read(lbn, 16);
          w.Release();
          l.CountDown();
        }(d, window, latch, static_cast<std::uint64_t>(i) * 16));
      }
      co_await latch.Wait();
    }(engine, unit, state.range(0)));
    engine.Run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiskUnitPipeline)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
