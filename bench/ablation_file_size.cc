// Ablation A7: file-size sensitivity. The paper used a 10 MB file after
// "preliminary tests showed qualitatively similar results with 100 and
// 1000 MB files" — this bench reruns the headline comparison across file
// sizes to confirm that the DDIO-vs-TC relationship is size-stable (startup
// effects fade; ratios hold).

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A7: file-size sweep (contiguous, rb + rc8)",
                       "paper Section 5: 10 MB is representative of 100/1000 MB", options);
  core::Table table({"file MB", "DDIO rb", "TC rb", "DDIO rc8", "TC rc8", "DDIO/TC rb"});
  for (std::uint64_t mb : {2ull, 5ull, 10ull, 20ull, 50ull}) {
    auto run = [&](const char* pattern, std::uint32_t record, core::Method method) {
      core::ExperimentConfig cfg;
      cfg.pattern = pattern;
      cfg.record_bytes = record;
      cfg.method = method;
      cfg.trials = options.trials;
      cfg.file_bytes = mb * 1024 * 1024;
      options.ApplyMachine(&cfg.machine);
      return core::RunExperiment(cfg, options.jobs).mean_mbps;
    };
    const double ddio_rb = run("rb", 8192, core::Method::kDiskDirected);
    const double tc_rb = run("rb", 8192, core::Method::kTraditionalCaching);
    table.AddRow({std::to_string(mb), core::Fixed(ddio_rb, 2), core::Fixed(tc_rb, 2),
                  core::Fixed(run("rc", 8, core::Method::kDiskDirected), 2),
                  core::Fixed(run("rc", 8, core::Method::kTraditionalCaching), 2),
                  core::Fixed(ddio_rb / tc_rb, 2)});
  }
  table.Print(std::cout);
  return 0;
}
