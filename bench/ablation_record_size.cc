// Ablation A3: record-size sweep. The paper ran 8, 1024, 4096, and 8192-byte
// records and reports that the intermediate sizes fall between the extremes;
// this bench regenerates the full curve for cyclic patterns (the
// record-size-sensitive ones) under both methods.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A3: record size sweep (contiguous, rc/wc)",
                       "paper Section 5: 1 KB / 4 KB results fall between 8 B and 8 KB",
                       options);
  core::Table table({"record bytes", "DDIO rc", "TC rc", "DDIO wc", "TC wc"});
  for (std::uint32_t record : {8u, 64u, 512u, 1024u, 4096u, 8192u}) {
    auto run = [&](const char* pattern, core::Method method) {
      core::ExperimentConfig cfg;
      cfg.pattern = pattern;
      cfg.record_bytes = record;
      cfg.method = method;
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      options.ApplyMachine(&cfg.machine);
      return core::RunExperiment(cfg, options.jobs).mean_mbps;
    };
    table.AddRow({std::to_string(record),
                  core::Fixed(run("rc", core::Method::kDiskDirected), 2),
                  core::Fixed(run("rc", core::Method::kTraditionalCaching), 2),
                  core::Fixed(run("wc", core::Method::kDiskDirected), 2),
                  core::Fixed(run("wc", core::Method::kTraditionalCaching), 2)});
  }
  table.Print(std::cout);
  std::printf("\n(DDIO rises monotonically and saturates by ~64-byte records; TC is\n"
              " non-monotone — at some sizes interprocess locality turns cyclic access\n"
              " into cache hits — but both converge at 8 KB records)\n");
  return 0;
}
