// Ablation: the access methods across storage-device models — the
// scheduling-vs-batching question the paper could not ask.
//
// Disk-directed I/O's advantage on the HP 97560 mixes two effects: (1) the
// IOP schedules the *mechanism* near-optimally because it sees the whole
// request up front (presort, one sweep across the platters), and (2) the
// request stream is coalesced into large per-disk batches (fewer commands,
// no per-record request processing). Sweeping the same collective over
//
//   hp97560  the paper's drive: positioning dominates, both effects live
//   fixed    constant per-command cost: positioning is free, only batching
//            (command count) matters — an analytic upper bound
//   ssd      flash-like: no positioning, read/write latency asymmetry, an
//            erase-block penalty that rewards sequential writes a little
//   hp97560+ssd  a heterogeneous half-HDD/half-SSD fleet (round-robin)
//
// separates them: DDIO's edge over TC on `hp97560` (about 2x on a
// random-block layout) should shrink on `ssd`/`fixed` to the residual of
// request coalescing and IOP-CPU work. Results land in BENCH_disks.json.
//
// Same flags as every bench (--trials, --file-mb, --quick, --jobs, --json)
// EXCEPT --disk: the model sweep is this bench's subject, so a --disk
// override is rejected rather than silently ignored. Output is
// byte-identical for any --jobs value.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  if (!options.disks.empty()) {
    std::fprintf(stderr,
                 "ablation_disk_models sweeps its own fixed model set; --disk is not "
                 "accepted here\n");
    return 2;
  }
  bench::PrintPreamble("Ablation: access methods x storage-device models",
                       "beyond the paper: scheduling vs batching (Section 8 extrapolation)",
                       options);

  struct ModelRow {
    const char* label;  // Short name for the table / JSON "disk" field.
    const char* spec;   // '+'-joined DiskSpec list.
  };
  static const ModelRow kModels[] = {
      {"hp97560", "hp97560"},
      {"fixed", "fixed:lat=0.2ms,bw=40MB"},
      {"ssd", "ssd:chan=4,rlat=80us,wlat=200us"},
      {"hp97560+ssd", "hp97560+ssd:chan=4,rlat=80us,wlat=200us"},
  };
  // rb on the random layout is where presort matters most (Figure 3's 2x);
  // wb adds the write direction, where the SSD's read/write asymmetry and
  // per-block erase penalties on randomly placed blocks bite.
  static const char* kPatterns[] = {"rb", "wb"};
  const std::vector<std::string> methods = {"ddio", "ddio-nosort", "tc", "twophase"};

  std::vector<core::ExperimentConfig> cells;
  for (const ModelRow& model : kModels) {
    for (const char* pattern : kPatterns) {
      for (const std::string& method : methods) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.record_bytes = 8192;
        cfg.layout = fs::LayoutKind::kRandomBlocks;
        bench::ApplyMethod(cfg, method);
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        std::string error;
        std::vector<disk::DiskSpec> specs;
        if (!disk::DiskSpec::TryParseList(model.spec, &specs, &error)) {
          std::fprintf(stderr, "ablation_disk_models: bad built-in spec %s: %s\n", model.spec,
                       error.c_str());
          return 2;
        }
        cfg.machine.SetDisks(std::move(specs));
        cells.push_back(std::move(cfg));
      }
    }
  }
  core::TrialExecutor executor(options.jobs);
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });

  bench::JsonPointSink json(options.json_path);
  std::size_t cell = 0;
  for (std::size_t m = 0; m < std::size(kModels); ++m) {
    std::printf("-- %s (%s) --\n", kModels[m].label, kModels[m].spec);
    std::vector<std::string> headers = {"pattern"};
    for (const std::string& method : methods) {
      headers.push_back(bench::MethodLabel(method) + " MB/s");
      headers.push_back("cv");
    }
    core::Table table(headers);
    for (const char* pattern : kPatterns) {
      std::vector<std::string> row = {pattern};
      for (const std::string& method : methods) {
        const core::ExperimentResult& result = results[cell++];
        row.push_back(core::Fixed(result.mean_mbps, 2));
        row.push_back(core::Fixed(result.cv, 3));
        json.Add("model", m, bench::MethodLabel(method), pattern, result.mean_mbps, result.cv,
                 options.trials, kModels[m].label);
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("(random-block layout, 8 KB records; DDIO-vs-TC ratio on hp97560 vs ssd/fixed\n"
              " = how much of disk-directed I/O's win is device scheduling vs batching)\n");
  return 0;
}
