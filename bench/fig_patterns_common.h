// Shared driver for Figures 3 and 4: the full pattern grid (19 patterns x
// {8-byte, 8192-byte} records) under a set of methods on one disk layout.
// Methods are named by their FileSystemRegistry keys ("ddio", "tc", ...);
// the registry-backed runner dispatches on the name.

#ifndef DDIO_BENCH_FIG_PATTERNS_COMMON_H_
#define DDIO_BENCH_FIG_PATTERNS_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/fs_registry.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/pattern/pattern.h"

namespace ddio::bench {

// Display label for a registry key: the paper name for the built-in four,
// the key itself for custom-registered methods. Exits on unregistered keys.
inline std::string MethodLabel(const std::string& key) {
  core::Method method;
  if (core::MethodFromKey(key, &method)) {
    return core::MethodName(method);
  }
  if (!core::FileSystemRegistry::BuiltIns().Has(key)) {
    std::fprintf(stderr, "bench: unknown method key \"%s\" (registered: %s)\n", key.c_str(),
                 core::FileSystemRegistry::BuiltIns().NamesJoined().c_str());
    std::exit(2);
  }
  return key;
}

// Points cfg at the method registered under `key` (enum kept in sync for
// the built-ins so display/ablation consumers agree).
inline void ApplyMethod(core::ExperimentConfig& cfg, const std::string& key) {
  cfg.method_key = key;
  core::MethodFromKey(key, &cfg.method);
}

inline void RunPatternGrid(const BenchOptions& options, fs::LayoutKind layout,
                           const std::vector<std::string>& methods) {
  for (std::uint32_t record_bytes : {8u, 8192u}) {
    std::printf("-- %u-byte records --\n", record_bytes);
    std::vector<std::string> headers = {"pattern"};
    for (const std::string& method : methods) {
      headers.push_back(MethodLabel(method) + " MB/s");
      headers.push_back("cv");
    }
    core::Table table(headers);
    for (const auto& spec : pattern::PatternSpec::PaperPatterns()) {
      std::vector<std::string> row = {spec.Name()};
      for (const std::string& method : methods) {
        core::ExperimentConfig cfg;
        cfg.pattern = spec.Name();
        cfg.record_bytes = record_bytes;
        cfg.layout = layout;
        ApplyMethod(cfg, method);
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        auto result = core::RunExperiment(cfg);
        row.push_back(core::Fixed(result.mean_mbps, 2));
        row.push_back(core::Fixed(result.cv, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_FIG_PATTERNS_COMMON_H_
