// Shared driver for Figures 3 and 4: the full pattern grid (19 patterns x
// {8-byte, 8192-byte} records) under a set of methods on one disk layout.

#ifndef DDIO_BENCH_FIG_PATTERNS_COMMON_H_
#define DDIO_BENCH_FIG_PATTERNS_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/pattern/pattern.h"

namespace ddio::bench {

inline void RunPatternGrid(const BenchOptions& options, fs::LayoutKind layout,
                           const std::vector<core::Method>& methods) {
  for (std::uint32_t record_bytes : {8u, 8192u}) {
    std::printf("-- %u-byte records --\n", record_bytes);
    std::vector<std::string> headers = {"pattern"};
    for (core::Method method : methods) {
      headers.push_back(std::string(core::MethodName(method)) + " MB/s");
      headers.push_back("cv");
    }
    core::Table table(headers);
    for (const auto& spec : pattern::PatternSpec::PaperPatterns()) {
      std::vector<std::string> row = {spec.Name()};
      for (core::Method method : methods) {
        core::ExperimentConfig cfg;
        cfg.pattern = spec.Name();
        cfg.record_bytes = record_bytes;
        cfg.layout = layout;
        cfg.method = method;
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        auto result = core::RunExperiment(cfg);
        row.push_back(core::Fixed(result.mean_mbps, 2));
        row.push_back(core::Fixed(result.cv, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_FIG_PATTERNS_COMMON_H_
