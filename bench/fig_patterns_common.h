// Shared driver for Figures 3 and 4: the full pattern grid (19 patterns x
// {8-byte, 8192-byte} records) under a set of methods on one disk layout.
// Methods are named by their FileSystemRegistry keys ("ddio", "tc", ...);
// the registry-backed runner dispatches on the name.

#ifndef DDIO_BENCH_FIG_PATTERNS_COMMON_H_
#define DDIO_BENCH_FIG_PATTERNS_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/fs_registry.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/pattern/pattern.h"

namespace ddio::bench {

// Display label for a registry key: the paper name for the built-in four,
// the key itself for custom-registered methods. Exits on unregistered keys.
inline std::string MethodLabel(const std::string& key) {
  core::Method method;
  if (core::MethodFromKey(key, &method)) {
    return core::MethodName(method);
  }
  if (!core::FileSystemRegistry::BuiltIns().Has(key)) {
    std::fprintf(stderr, "bench: unknown method key \"%s\" (registered: %s)\n", key.c_str(),
                 core::FileSystemRegistry::BuiltIns().NamesJoined().c_str());
    std::exit(2);
  }
  return key;
}

// Points cfg at the method registered under `key` (enum kept in sync for
// the built-ins so display/ablation consumers agree).
inline void ApplyMethod(core::ExperimentConfig& cfg, const std::string& key) {
  cfg.method_key = key;
  core::MethodFromKey(key, &cfg.method);
}

// With options.jobs > 1 the (record size, pattern, method) cells run
// concurrently on the fixed pool (trials stay serial within a cell); rows
// are emitted in the original order from a cell-indexed result vector, so
// the printed tables are byte-identical for any job count.
inline void RunPatternGrid(const BenchOptions& options, fs::LayoutKind layout,
                           const std::vector<std::string>& methods) {
  const std::vector<pattern::PatternSpec> specs = pattern::PatternSpec::PaperPatterns();
  static const std::uint32_t kRecordSizes[] = {8u, 8192u};

  std::vector<core::ExperimentConfig> cells;
  for (std::uint32_t record_bytes : kRecordSizes) {
    for (const auto& spec : specs) {
      for (const std::string& method : methods) {
        core::ExperimentConfig cfg;
        cfg.pattern = spec.Name();
        cfg.record_bytes = record_bytes;
        cfg.layout = layout;
        ApplyMethod(cfg, method);
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        options.ApplyExperiment(&cfg);
        cells.push_back(std::move(cfg));
      }
    }
  }
  core::TrialExecutor executor(options.jobs);
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });

  std::size_t cell = 0;
  for (std::uint32_t record_bytes : kRecordSizes) {
    std::printf("-- %u-byte records --\n", record_bytes);
    std::vector<std::string> headers = {"pattern"};
    for (const std::string& method : methods) {
      headers.push_back(MethodLabel(method) + " MB/s");
      headers.push_back("cv");
    }
    core::Table table(headers);
    for (const auto& spec : specs) {
      std::vector<std::string> row = {spec.Name()};
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const core::ExperimentResult& result = results[cell++];
        row.push_back(core::Fixed(result.mean_mbps, 2));
        row.push_back(core::Fixed(result.cv, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_FIG_PATTERNS_COMMON_H_
