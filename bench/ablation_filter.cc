// Ablation A9: filtered collective reads (selection pushdown to the IOPs) —
// the paper's Section 8 suggestion of "selecting only a subset of records
// that match some criterion", in the spirit of the Tandem NonStop machines
// it cites ("which scan the local database partition and send only the
// relevant tuples back").
//
// The scan is disk-bound regardless of selectivity; what changes is the
// data shipped through the interconnect and the CP-side arrival work.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/machine.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/ddio/ddio_fs.h"
#include "src/fs/striped_file.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A9: filtered collective reads (contiguous, rb, 128 B records)",
                       "paper Section 8: record-subset transfers; scan stays disk-bound",
                       options);
  core::Table table({"selectivity", "scan MB/s", "shipped MB", "pieces"});
  for (double selectivity : {1.0, 0.5, 0.1, 0.01}) {
    // Trials are independent simulations; run them on the fixed pool and
    // sum per-trial slots in index order so the printed means are
    // byte-identical for any --jobs value.
    std::vector<core::OpStats> trials(options.trials);
    core::ParallelFor(options.jobs, options.trials, [&](std::size_t trial) {
      sim::Engine engine(3000 + static_cast<std::uint64_t>(trial));
      core::MachineConfig mc;
      options.ApplyMachine(&mc);
      core::Machine machine(engine, mc);
      fs::StripedFile::Params fp;
      fp.file_bytes = options.file_bytes();
      fs::StripedFile file(fp, engine.rng());
      pattern::AccessPattern pattern(pattern::PatternSpec::Parse("rb"), fp.file_bytes, 128,
                                     mc.num_cps);
      ddio_fs::DdioFileSystem fs(machine);
      fs.Start();
      engine.Spawn(fs.RunFilteredRead(file, pattern, selectivity,
                                      99 + static_cast<std::uint64_t>(trial), &trials[trial]));
      engine.Run();
    });
    double mbps_sum = 0;
    double shipped = 0;
    std::uint64_t pieces = 0;
    for (const core::OpStats& stats : trials) {
      mbps_sum += stats.ThroughputMBps();  // File bytes scanned over time.
      shipped += static_cast<double>(stats.bytes_delivered) / 1e6;
      pieces += stats.pieces;
    }
    table.AddRow({core::Fixed(selectivity, 2), core::Fixed(mbps_sum / options.trials, 2),
                  core::Fixed(shipped / options.trials, 2),
                  std::to_string(pieces / options.trials)});
  }
  table.Print(std::cout);
  std::printf("\n(scan rate ~constant: the disks bound the scan; shipped bytes track\n"
              " selectivity — early filtering saves interconnect and CP work)\n");
  return 0;
}
