// Ablation A6: can IOP-side dynamic disk scheduling (C-SCAN over the queued
// requests) save traditional caching on the random-blocks layout?
//
// The paper's argument (Section 3): DDIO's presort operates on the WHOLE
// transfer ("possibly across megabytes of data"), while a caching IOP can
// only reorder whatever happens to be queued — at most one outstanding
// request per CP per disk. This bench measures exactly that gap.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/disk/disk_unit.h"

int main(int argc, char** argv) {
  using namespace ddio;
  auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Ablation A6: IOP disk-queue scheduling (random-blocks layout)",
                       "paper Section 3: queue-depth-limited scheduling cannot match presort",
                       options);
  core::Table table(
      {"pattern", "rec", "TC fcfs", "TC elevator", "DDIO nosort", "DDIO presort"});
  for (const char* pattern : {"ra", "rb", "rc"}) {
    for (std::uint32_t record : {8192u}) {
      auto run = [&](core::Method method, disk::DiskQueuePolicy policy) {
        core::ExperimentConfig cfg;
        cfg.pattern = pattern;
        cfg.record_bytes = record;
        cfg.layout = fs::LayoutKind::kRandomBlocks;
        cfg.method = method;
        cfg.machine.disk_queue = policy;
        cfg.trials = options.trials;
        cfg.file_bytes = options.file_bytes();
        options.ApplyMachine(&cfg.machine);
        return core::RunExperiment(cfg, options.jobs).mean_mbps;
      };
      table.AddRow(
          {pattern, std::to_string(record),
           core::Fixed(run(core::Method::kTraditionalCaching, disk::DiskQueuePolicy::kFcfs), 2),
           core::Fixed(run(core::Method::kTraditionalCaching, disk::DiskQueuePolicy::kElevator),
                       2),
           core::Fixed(run(core::Method::kDiskDirectedNoSort, disk::DiskQueuePolicy::kFcfs), 2),
           core::Fixed(run(core::Method::kDiskDirected, disk::DiskQueuePolicy::kFcfs), 2)});
    }
  }
  table.Print(std::cout);
  std::printf("\n(elevator helps TC only as far as its shallow queues allow;\n"
              " DDIO's whole-transfer presort remains ahead)\n");
  return 0;
}
