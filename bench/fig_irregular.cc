// Beyond the paper's Figure 3 grid: parameterized block-cyclic CYCLIC(k)
// reads (rc<k>) swept over k, plus the irregular index-list case (`ri:<seed>`)
// the paper's future-work section defers. CYCLIC(k) interpolates between the
// paper's two extremes — k=1 is the splintered `rc`, k large approaches `rb` —
// so the sweep shows where each method's pattern sensitivity lives; the `ri:`
// rows show all methods on a fully scattered ownership map.
//
// Same flags as every bench (--trials, --file-mb, --quick, --jobs, --json).
// Output is byte-identical for any --jobs value: cells land in an
// index-addressed vector and rows/JSON are emitted in serial order.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"
#include "src/core/parallel.h"
#include "src/core/report.h"
#include "src/core/runner.h"

int main(int argc, char** argv) {
  using namespace ddio;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintPreamble("Irregular and block-cyclic patterns",
                       "beyond Figure 3: CYCLIC(k) sweep + deferred irregular case",
                       options);

  // 512-byte records: 16 per 8 KB file block, so k sweeps the piece
  // structure from fully splintered (k=1: 16 pieces per block) through
  // one-block deals (k=16) to multi-block deals (k=64).
  static const std::uint32_t kCyclicK[] = {1u, 2u, 4u, 16u, 64u};
  static const char* kIrregular[] = {"ri:1", "ri:2"};
  const std::vector<std::string> methods = {"ddio", "ddio-nosort", "tc", "twophase"};

  // One cell per (pattern row, method column); rows are the k sweep followed
  // by the irregular seeds.
  std::vector<std::string> row_patterns;
  for (std::uint32_t k : kCyclicK) {
    row_patterns.push_back(k == 1 ? "rc" : "rc" + std::to_string(k));
  }
  for (const char* name : kIrregular) {
    row_patterns.push_back(name);
  }

  std::vector<core::ExperimentConfig> cells;
  for (const std::string& pattern : row_patterns) {
    for (const std::string& method : methods) {
      core::ExperimentConfig cfg;
      cfg.pattern = pattern;
      cfg.record_bytes = 512;
      cfg.layout = fs::LayoutKind::kRandomBlocks;  // Figure 3's layout.
      bench::ApplyMethod(cfg, method);
      cfg.trials = options.trials;
      cfg.file_bytes = options.file_bytes();
      options.ApplyMachine(&cfg.machine);
      cells.push_back(std::move(cfg));
    }
  }
  core::TrialExecutor executor(options.jobs);
  std::vector<core::ExperimentResult> results = executor.Map<core::ExperimentResult>(
      cells.size(), [&](std::size_t i) { return core::RunExperiment(cells[i], 1); });

  std::vector<std::string> headers = {"pattern"};
  for (const std::string& method : methods) {
    headers.push_back(bench::MethodLabel(method) + " MB/s");
    headers.push_back("cv");
  }
  core::Table table(headers);
  bench::JsonPointSink json(options.json_path);
  std::size_t cell = 0;
  for (std::size_t p = 0; p < row_patterns.size(); ++p) {
    std::vector<std::string> row = {row_patterns[p]};
    // JSON dimension "k": the CYCLIC block size, 0 for the irregular rows.
    const std::uint64_t k = p < std::size(kCyclicK) ? kCyclicK[p] : 0;
    for (const std::string& method : methods) {
      const core::ExperimentResult& result = results[cell++];
      row.push_back(core::Fixed(result.mean_mbps, 2));
      row.push_back(core::Fixed(result.cv, 3));
      json.Add("k", k, bench::MethodLabel(method), row_patterns[p], result.mean_mbps,
               result.cv, options.trials);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n(rc<k> = HPF CYCLIC(k), 512 B records; ri:<seed> = irregular index list)\n");
  return 0;
}
