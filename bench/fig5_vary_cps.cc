// Figure 5: throughput as the number of CPs varies (1-16), contiguous
// layout, 8 KB records, IOPs = disks = 16. TC's cache stays at two buffers
// per disk per CP, so it shrinks with the CP count.
//
// Paper shape: DDIO unaffected by CP count; TC hurt on rb (multiple
// localities), rc crippled with few CPs (one outstanding 1-block request per
// CP uses one disk at a time), and all TC patterns decline slightly as CPs
// grow (cache-management overhead and contention).

#include "bench/bench_util.h"
#include "bench/fig_sweep_common.h"

int main(int argc, char** argv) {
  auto options = ddio::bench::BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Figure 5: varying the number of CPs",
      "DDIO flat ~33 MB/s; TC rc tiny at 1-2 CPs; TC declines as CPs grow", options);
  ddio::bench::RunSweep(options, "CPs", {1, 2, 4, 8, 16}, ddio::fs::LayoutKind::kContiguous,
                        [](ddio::core::ExperimentConfig& cfg, std::uint32_t cps) {
                          cfg.machine.num_cps = cps;
                        });
  return 0;
}
