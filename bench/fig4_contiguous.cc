// Figure 4: throughput of disk-directed I/O vs. traditional caching on the
// CONTIGUOUS disk layout, all 19 patterns, both record sizes.
//
// Paper shape to reproduce: DDIO ~32.8 MB/s reading / ~34.8 MB/s writing
// (~93% of the 37.5 MB/s aggregate disk peak) for most patterns; 8-byte
// patterns lower (per-record Memput/Memget overhead); TC rarely reaches full
// bandwidth, up to 16.2x slower, matching DDIO only on wn-like patterns.

#include "bench/bench_util.h"
#include "bench/fig_patterns_common.h"

int main(int argc, char** argv) {
  auto options = ddio::bench::BenchOptions::Parse(argc, argv);
  ddio::bench::PrintPreamble(
      "Figure 4: contiguous disk layout",
      "DDIO ~32.8 r / ~34.8 w MB/s (93% of 37.5 peak); TC up to 16.2x slower", options);
  ddio::bench::RunPatternGrid(options, ddio::fs::LayoutKind::kContiguous, {"ddio", "tc"});
  return 0;
}
