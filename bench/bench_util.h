// Shared command-line handling and preamble printing for the per-figure
// bench binaries.
//
// Flags (all optional):
//   --trials=N    independent trials per configuration (default 5, as in the
//                 paper)
//   --file-mb=N   file size in MB (default 10, as in the paper)
//   --quick       1 trial, 2 MB file: CI-friendly smoke mode

#ifndef DDIO_BENCH_BENCH_UTIL_H_
#define DDIO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ddio::bench {

struct BenchOptions {
  std::uint32_t trials = 5;
  std::uint64_t file_mb = 10;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trials=", 9) == 0) {
        options.trials = static_cast<std::uint32_t>(std::strtoul(arg + 9, nullptr, 10));
      } else if (std::strncmp(arg, "--file-mb=", 10) == 0) {
        options.file_mb = std::strtoull(arg + 10, nullptr, 10);
      } else if (std::strcmp(arg, "--quick") == 0) {
        options.trials = 1;
        options.file_mb = 2;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf("usage: %s [--trials=N] [--file-mb=N] [--quick]\n", argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    if (options.trials == 0 || options.file_mb == 0) {
      std::fprintf(stderr, "trials and file-mb must be positive\n");
      std::exit(2);
    }
    return options;
  }

  std::uint64_t file_bytes() const { return file_mb * 1024 * 1024; }
};

inline void PrintPreamble(const char* title, const char* paper_reference,
                          const BenchOptions& options) {
  std::printf("== %s ==\n", title);
  std::printf("paper reference: %s\n", paper_reference);
  std::printf("file: %llu MB, trials per point: %u\n\n",
              static_cast<unsigned long long>(options.file_mb), options.trials);
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_BENCH_UTIL_H_
