// Shared command-line handling and preamble printing for the per-figure
// bench binaries.
//
// Flags (all optional):
//   --trials=N    independent trials per configuration (default 5, as in the
//                 paper)
//   --file-mb=N   file size in MB (default 10, as in the paper)
//   --quick       1 trial, 2 MB file: CI-friendly smoke mode
//   --jobs=N      run independent simulations on N threads (0 = all hardware
//                 threads; default 1). Output is byte-identical for any N.
//   --disk=SPEC   storage-device model(s) from the DiskModelRegistry, e.g.
//                 hp97560:seg=4, fixed:lat=0.2ms,bw=40MB, or
//                 ssd:chan=4,rlat=80us,wlat=200us; '+'-join specs for a
//                 heterogeneous fleet (round-robin over the disks)
//   --net=SPEC    interconnect topology from the TopologyRegistry, e.g.
//                 torus:w=8,h=8 or tree:radix=32,up=400MB (default: torus
//                 sized for the node count, as in the paper)
//   --json=PATH   also write machine-readable results (per-point means/CIs)
//                 to PATH
//   --trace=SPEC  observability planes (src/obs/trace_spec.h). Multi-cell
//                 benches accept sink-free planes only (attrib) — chrome:/csv:
//                 files would be overwritten once per cell; use `simulate
//                 --trace=chrome:PATH` to trace a single cell

#ifndef DDIO_BENCH_BENCH_UTIL_H_
#define DDIO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/runner.h"
#include "src/core/spec_error.h"
#include "src/disk/disk_registry.h"
#include "src/net/net_spec.h"
#include "src/obs/trace_spec.h"

namespace ddio::bench {

struct BenchOptions {
  std::uint32_t trials = 5;
  std::uint64_t file_mb = 10;
  bool quick = false;
  unsigned jobs = 1;      // 0 = one job per hardware thread.
  std::string json_path;  // Empty: no JSON output.
  // Parsed --disk fleet; empty = the config default (hp97560).
  std::vector<disk::DiskSpec> disks;
  // Parsed --net topology; default torus keeps runs identical to the
  // pre-flag binaries.
  net::NetSpec net;
  // Parsed --trace planes; inactive = no tracer, byte-identical to the
  // pre-flag binaries.
  obs::TraceSpec trace;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trials=", 9) == 0) {
        options.trials = static_cast<std::uint32_t>(std::strtoul(arg + 9, nullptr, 10));
      } else if (std::strncmp(arg, "--file-mb=", 10) == 0) {
        options.file_mb = std::strtoull(arg + 10, nullptr, 10);
      } else if (std::strcmp(arg, "--quick") == 0) {
        options.quick = true;
        options.trials = 1;
        options.file_mb = 2;
      } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
        // Strict parse: "--jobs=all" must not strtoul to 0, the
        // all-hardware-threads sentinel.
        char* end = nullptr;
        options.jobs = static_cast<unsigned>(std::strtoul(arg + 7, &end, 10));
        if (end == arg + 7 || *end != '\0') {
          core::SpecError("--jobs", "wants a number (0 = all hardware threads)");
        }
      } else if (std::strncmp(arg, "--disk=", 7) == 0) {
        std::string error;
        if (!disk::DiskSpec::TryParseList(arg + 7, &options.disks, &error)) {
          core::SpecError("--disk", error);
        }
      } else if (std::strncmp(arg, "--net=", 6) == 0) {
        std::string error;
        if (!net::NetSpec::TryParse(arg + 6, &options.net, &error)) {
          core::SpecError("--net", error);
        }
      } else if (std::strncmp(arg, "--trace=", 8) == 0) {
        std::string error;
        if (!obs::TraceSpec::TryParse(arg + 8, &options.trace, &error)) {
          core::SpecError("--trace", error);
        }
        if (options.trace.chrome || options.trace.csv) {
          core::SpecError("--trace",
                          "chrome:/csv: sinks are per-run files; a multi-cell bench would "
                          "overwrite them every cell — use attrib here, or trace one cell "
                          "with `simulate --trace=chrome:PATH`");
        }
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        options.json_path = arg + 7;
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "usage: %s [--trials=N] [--file-mb=N] [--quick] [--jobs=N] [--disk=SPEC]\n"
            "          [--net=SPEC] [--json=PATH] [--trace=attrib]\n"
            "  --disk models (%s): e.g. hp97560:seg=4, fixed:lat=0.2ms,bw=40MB,\n"
            "         ssd:chan=4,rlat=80us,wlat=200us; '+'-join for a fleet\n"
            "  --net topologies (%s): e.g. torus:w=8,h=8, tree:radix=32,up=400MB\n",
            argv[0], disk::DiskModelRegistry::BuiltIns().NamesJoined(" | ").c_str(),
            net::TopologyRegistry::BuiltIns().NamesJoined(" | ").c_str());
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    if (options.trials == 0 || options.file_mb == 0) {
      std::fprintf(stderr, "trials and file-mb must be positive\n");
      std::exit(2);
    }
    return options;
  }

  // Applies every bench-level override to an experiment config: the machine
  // planes (--disk/--net) plus the observability plane (--trace).
  void ApplyExperiment(core::ExperimentConfig* config) const {
    ApplyMachine(&config->machine);
    config->trace = trace;
  }

  std::uint64_t file_bytes() const { return file_mb * 1024 * 1024; }

  // Applies the parsed --disk fleet and --net topology to a machine config
  // (no-op without the flags, keeping default runs bit-identical to the
  // pre-flag binaries).
  void ApplyMachine(core::MachineConfig* machine) const {
    if (!disks.empty()) {
      machine->SetDisks(disks);
    }
    if (!(net == net::NetSpec())) {
      std::string error;
      if (!net.Validate(machine->num_nodes(), &error)) {
        std::fprintf(stderr, "--net: %s\n", error.c_str());
        std::exit(2);
      }
      machine->net.topology = net;
    }
  }
};

// Collects per-point results (mean + coefficient of variation across trials)
// and writes them as one JSON document. Used by the sweep/figure benches when
// --json=PATH is given, so CI can diff per-point numbers across PRs.
class JsonPointSink {
 public:
  explicit JsonPointSink(std::string path) : path_(std::move(path)) {}
  JsonPointSink(const JsonPointSink&) = delete;
  JsonPointSink& operator=(const JsonPointSink&) = delete;
  ~JsonPointSink() { Flush(); }

  void Add(const std::string& dimension, std::uint64_t value, const std::string& method,
           const std::string& pattern, double mean_mbps, double cv, std::uint32_t trials,
           const std::string& disk_model = "", const std::string& spec = "",
           const std::string& extra_json = "") {
    if (path_.empty()) {
      return;
    }
    const std::string disk_field =
        disk_model.empty() ? "" : "\"disk\": \"" + disk_model + "\", ";
    // Free-form configuration tag (e.g. a --tc-cache spec); omitted when empty
    // so pre-existing benches' JSON stays byte-identical.
    const std::string spec_field = spec.empty() ? "" : "\"spec\": \"" + spec + "\", ";
    char tail[96];
    std::snprintf(tail, sizeof(tail), "\"mean_mbps\": %.4f, \"cv\": %.4f, \"trials\": %u",
                  mean_mbps, cv, trials);
    // extra_json: pre-formatted `"key": value` fields appended after the
    // standard ones (e.g. the --trace=attrib buckets); empty keeps the
    // pre-existing benches' JSON byte-identical.
    points_.push_back("    {\"" + dimension + "\": " + std::to_string(value) +
                      ", \"method\": \"" + method + "\", \"pattern\": \"" + pattern + "\", " +
                      disk_field + spec_field + tail +
                      (extra_json.empty() ? "" : ", " + extra_json) + "}");
  }

  void Flush() {
    if (path_.empty() || points_.empty()) {
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"points\": [\n");
    for (std::size_t i = 0; i < points_.size(); ++i) {
      std::fprintf(f, "%s%s\n", points_[i].c_str(), i + 1 < points_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
    points_.clear();
  }

 private:
  std::string path_;
  std::vector<std::string> points_;
};

inline void PrintPreamble(const char* title, const char* paper_reference,
                          const BenchOptions& options) {
  std::printf("== %s ==\n", title);
  std::printf("paper reference: %s\n", paper_reference);
  if (!options.disks.empty()) {
    std::printf("disk model: %s\n", disk::JoinSpecTexts(options.disks).c_str());
  }
  if (!(options.net == net::NetSpec())) {
    std::printf("net topology: %s\n", options.net.text().c_str());
  }
  std::printf("file: %llu MB, trials per point: %u\n\n",
              static_cast<unsigned long long>(options.file_mb), options.trials);
}

}  // namespace ddio::bench

#endif  // DDIO_BENCH_BENCH_UTIL_H_
