// Disk explorer: poke at the HP 97560 mechanism model directly.
//
// Prints the seek-time curve, rotational parameters, sequential streaming
// behavior (with the firmware read-ahead visible), the cost of interleaving
// sequential streams, and a random-access histogram — the raw ingredients
// behind every result in the paper.
//
//   $ ./disk_explorer

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/disk/geometry.h"
#include "src/disk/hp97560.h"
#include "src/sim/engine.h"
#include "src/sim/time.h"

int main() {
  using namespace ddio;
  disk::Hp97560::Params params;
  const disk::DiskGeometry& geo = params.geometry;

  std::printf("HP 97560 (Ruemmler & Wilkes model)\n");
  std::printf("  geometry : %u cylinders x %u heads x %u sectors x %u B = %.2f GB\n",
              geo.cylinders, geo.heads, geo.sectors_per_track, geo.bytes_per_sector,
              static_cast<double>(geo.CapacityBytes()) / 1e9);
  std::printf("  rotation : %.3f ms (%.0f RPM), sector time %.1f us\n",
              sim::ToMs(geo.RotationPeriod()), params.geometry.rpm,
              sim::ToUs(geo.SectorTime()));
  std::printf("  skew     : track %u sectors, cylinder %u sectors\n\n",
              geo.track_skew_sectors, geo.cylinder_skew_sectors);

  std::printf("seek curve (3.24 + 0.400*sqrt(d) ms below 383 cylinders, "
              "8.00 + 0.008*d above):\n");
  std::printf("  %8s  %8s\n", "cyls", "ms");
  for (std::uint32_t d : {0u, 1u, 2u, 4u, 16u, 64u, 256u, 382u, 383u, 1024u, 1961u}) {
    std::printf("  %8u  %8.2f\n", d, sim::ToMs(params.seek.SeekTime(d)));
  }

  {
    disk::Hp97560 drive(params);
    std::printf("\nsequential read of 2 MB (256 blocks, double-buffered consumer):\n");
    sim::SimTime t = 0;
    for (int i = 0; i < 256; ++i) {
      t = drive.Access(t, static_cast<std::uint64_t>(i) * 16, 16, false).completion;
    }
    std::printf("  elapsed %.1f ms -> %.2f MB/s (geometric sustained: %.2f MB/s)\n",
                sim::ToMs(t), 256.0 * 8192 / sim::ToSec(t) / 1e6,
                drive.SustainedBandwidthBytesPerSec() / 1e6);
    std::printf("  stream hits: %llu of %llu requests\n",
                static_cast<unsigned long long>(drive.stats().stream_hits),
                static_cast<unsigned long long>(drive.stats().requests));
  }

  {
    std::printf("\ntwo interleaved sequential streams (the locality problem):\n");
    disk::Hp97560 drive(params);
    sim::SimTime t = 0;
    std::uint64_t a = 0, b = 1'000'000;
    for (int i = 0; i < 64; ++i) {
      t = drive.Access(t, a, 16, false).completion;
      a += 16;
      t = drive.Access(t, b, 16, false).completion;
      b += 16;
    }
    std::printf("  128 blocks in %.1f ms -> %.2f MB/s (%.0f%% of sustained)\n", sim::ToMs(t),
                128.0 * 8192 / sim::ToSec(t) / 1e6,
                100.0 * (128.0 * 8192 / sim::ToSec(t)) /
                    drive.SustainedBandwidthBytesPerSec());
    std::printf("  seeks: %llu, time seeking: %.1f ms, rotational wait: %.1f ms\n",
                static_cast<unsigned long long>(drive.stats().seeks),
                sim::ToMs(drive.stats().seek_ns), sim::ToMs(drive.stats().rotation_ns));
  }

  {
    std::printf("\n80 random 8 KB blocks, unsorted vs sorted (the DDIO presort win):\n");
    sim::Engine rng_engine(11);
    std::vector<std::uint64_t> lbns;
    const std::uint64_t slots = geo.TotalSectors() / 16;
    for (int i = 0; i < 80; ++i) {
      lbns.push_back(rng_engine.rng().Uniform(0, slots - 1) * 16);
    }
    auto run = [&](const std::vector<std::uint64_t>& order) {
      disk::Hp97560 drive(params);
      sim::SimTime t = 0;
      for (std::uint64_t lbn : order) {
        t = drive.Access(t, lbn, 16, false).completion;
      }
      return t;
    };
    sim::SimTime unsorted = run(lbns);
    std::vector<std::uint64_t> sorted = lbns;
    std::sort(sorted.begin(), sorted.end());
    sim::SimTime sorted_time = run(sorted);
    std::printf("  unsorted: %.0f ms (%.2f MB/s/disk)\n", sim::ToMs(unsorted),
                80.0 * 8192 / sim::ToSec(unsorted) / 1e6);
    std::printf("  sorted  : %.0f ms (%.2f MB/s/disk) -> %.0f%% faster\n",
                sim::ToMs(sorted_time), 80.0 * 8192 / sim::ToSec(sorted_time) / 1e6,
                100.0 * (static_cast<double>(unsorted) / sorted_time - 1.0));
  }
  return 0;
}
