// Out-of-core matrix transpose: read a matrix distributed one way, write it
// back distributed another way — the kind of "more complex transfer" the
// paper's conclusions anticipate, built entirely from the two collective
// primitives.
//
// The matrix lives in a scratch file in row-major order. Each pass:
//   1. collective-read the file into CP memories with distribution A,
//   2. (in a real program: locally transpose each CP's tile),
//   3. collective-write the file from distribution B.
// Choosing A = (BLOCK, NONE) rows and B = (NONE, BLOCK) columns makes the
// read+write pair equivalent to redistributing the matrix from row-panels
// to column-panels — an all-to-all that out-of-core FFT and linear-algebra
// codes perform constantly.
//
//   $ ./transpose

#include <cstdio>

#include "src/core/machine.h"
#include "src/core/op_stats.h"
#include "src/ddio/ddio_fs.h"
#include "src/fs/striped_file.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/tc/tc_fs.h"

namespace {

constexpr std::uint64_t kMatrixBytes = 10 * 1024 * 1024;
constexpr std::uint32_t kRecordBytes = 1024;  // One 128-double row segment.

template <typename FileSystem>
double RunTranspose(const char* fs_name) {
  using namespace ddio;
  sim::Engine engine(/*seed=*/5);
  core::MachineConfig machine_config;
  core::Machine machine(engine, machine_config);

  fs::StripedFile::Params file_params;
  file_params.file_bytes = kMatrixBytes;
  file_params.layout = fs::LayoutKind::kContiguous;
  fs::StripedFile scratch(file_params, engine.rng());

  // Row panels in, column panels out.
  pattern::AccessPattern row_panels(pattern::PatternSpec::Parse("rbn"), kMatrixBytes,
                                    kRecordBytes, machine.num_cps());
  pattern::AccessPattern column_panels(pattern::PatternSpec::Parse("wnb"), kMatrixBytes,
                                       kRecordBytes, machine.num_cps());

  FileSystem file_system(machine);
  file_system.Start();

  core::OpStats read_stats;
  core::OpStats write_stats;
  engine.Spawn([](FileSystem& fs_ref, const fs::StripedFile& file,
                  const pattern::AccessPattern& in, const pattern::AccessPattern& out,
                  core::OpStats& rs, core::OpStats& ws) -> sim::Task<> {
    co_await fs_ref.RunCollective(file, in, &rs);
    // Local tile transpose would happen here (pure CP compute).
    co_await fs_ref.RunCollective(file, out, &ws);
  }(file_system, scratch, row_panels, column_panels, read_stats, write_stats));
  engine.Run();

  const double total_s = ddio::sim::ToSec(write_stats.end_ns);
  std::printf("  %-20s read %6.2f MB/s, write %6.2f MB/s, total %.2f s\n", fs_name,
              read_stats.ThroughputMBps(), write_stats.ThroughputMBps(), total_s);
  return total_s;
}

}  // namespace

int main() {
  std::printf("Out-of-core transpose of a 10 MB matrix (1 KB records):\n"
              "read row-panels (BLOCK,NONE), write column-panels (NONE,BLOCK).\n\n");
  double tc = RunTranspose<ddio::tc::TcFileSystem>("traditional caching");
  double dd = RunTranspose<ddio::ddio_fs::DdioFileSystem>("disk-directed I/O");
  std::printf("\nspeedup: %.2fx\n", tc / dd);
  return 0;
}
