// simulate: command-line front end to the whole simulator — run any single
// experiment configuration and get throughput plus a resource-utilization
// breakdown identifying the binding bottleneck.
//
//   $ ./simulate --pattern=rc --record=8 --method=tc
//   $ ./simulate --pattern=wbb --method=ddio --layout=random --trials=5
//   $ ./simulate --pattern=rb --method=ddio --cps=8 --iops=4 --disks=8 --verbose
//
// Flags:
//   --pattern=NAME     ra rn rb rc rnb rbb rcb rbc rcc rcn (r->w for writes)
//   --record=BYTES     record size (default 8192)
//   --method=M         ddio | ddio-nosort | tc | twophase (default ddio)
//   --layout=L         contiguous | random (default contiguous)
//   --cps=N --iops=N --disks=N --file-mb=N --trials=N --seed=N
//   --elevator         C-SCAN IOP disk queues (default FCFS)
//   --strided          TC strided requests (future-work extension)
//   --gather           DDIO gather/scatter Memput/Memget (future-work extension)
//   --contention       model per-link wormhole contention on the torus
//   --describe         print the pattern's chunk structure (Figure-2 cs/s) and exit
//   --verbose          per-trial results + utilization snapshot

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/machine.h"
#include "src/core/runner.h"
#include "src/core/validation.h"
#include "src/disk/disk_unit.h"
#include "src/fs/striped_file.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--pattern=NAME] [--record=BYTES] [--method=ddio|ddio-nosort|tc|"
               "twophase]\n"
               "          [--layout=contiguous|random] [--cps=N] [--iops=N] [--disks=N]\n"
               "          [--file-mb=N] [--trials=N] [--seed=N] [--elevator] [--strided]\n"
               "          [--gather] [--verbose]\n",
               argv0);
  std::exit(2);
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddio;
  core::ExperimentConfig cfg;
  cfg.pattern = "rb";
  bool verbose = false;
  bool describe = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (MatchFlag(arg, "--pattern", &value)) {
      cfg.pattern = value;
    } else if (MatchFlag(arg, "--record", &value)) {
      cfg.record_bytes = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--method", &value)) {
      if (std::strcmp(value, "ddio") == 0) {
        cfg.method = core::Method::kDiskDirected;
      } else if (std::strcmp(value, "ddio-nosort") == 0) {
        cfg.method = core::Method::kDiskDirectedNoSort;
      } else if (std::strcmp(value, "tc") == 0) {
        cfg.method = core::Method::kTraditionalCaching;
      } else if (std::strcmp(value, "twophase") == 0) {
        cfg.method = core::Method::kTwoPhase;
      } else {
        Usage(argv[0]);
      }
    } else if (MatchFlag(arg, "--layout", &value)) {
      if (std::strcmp(value, "contiguous") == 0) {
        cfg.layout = fs::LayoutKind::kContiguous;
      } else if (std::strcmp(value, "random") == 0) {
        cfg.layout = fs::LayoutKind::kRandomBlocks;
      } else {
        Usage(argv[0]);
      }
    } else if (MatchFlag(arg, "--cps", &value)) {
      cfg.machine.num_cps = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--iops", &value)) {
      cfg.machine.num_iops = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--disks", &value)) {
      cfg.machine.num_disks = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--file-mb", &value)) {
      cfg.file_bytes = std::strtoull(value, nullptr, 10) * 1024 * 1024;
    } else if (MatchFlag(arg, "--trials", &value)) {
      cfg.trials = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--seed", &value)) {
      cfg.base_seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(arg, "--elevator") == 0) {
      cfg.machine.disk_queue = disk::DiskQueuePolicy::kElevator;
    } else if (std::strcmp(arg, "--strided") == 0) {
      cfg.tc_strided = true;
    } else if (std::strcmp(arg, "--gather") == 0) {
      cfg.ddio_gather_scatter = true;
    } else if (std::strcmp(arg, "--contention") == 0) {
      cfg.machine.net.model_link_contention = true;
    } else if (std::strcmp(arg, "--describe") == 0) {
      describe = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      Usage(argv[0]);
    }
  }

  if (describe) {
    pattern::AccessPattern pattern(pattern::PatternSpec::Parse(cfg.pattern), cfg.file_bytes,
                                   cfg.record_bytes, cfg.machine.num_cps);
    pattern::PatternSummary summary = pattern::Summarize(pattern);
    std::printf("pattern %s: %llu x %llu records of %u B, CP grid %u x %u\n",
                cfg.pattern.c_str(), static_cast<unsigned long long>(pattern.rows()),
                static_cast<unsigned long long>(pattern.cols()), cfg.record_bytes,
                pattern.grid_rows(), pattern.grid_cols());
    std::printf("  cs (chunk size)  : %llu bytes\n",
                static_cast<unsigned long long>(summary.chunk_bytes));
    if (summary.max_stride_bytes > 0) {
      if (summary.min_stride_bytes == summary.max_stride_bytes) {
        std::printf("  s (stride)       : %llu bytes\n",
                    static_cast<unsigned long long>(summary.min_stride_bytes));
      } else {
        std::printf("  s (stride)       : %llu .. %llu bytes\n",
                    static_cast<unsigned long long>(summary.min_stride_bytes),
                    static_cast<unsigned long long>(summary.max_stride_bytes));
      }
    }
    std::printf("  chunks per CP    : %llu (%u participating CPs, %llu total)\n",
                static_cast<unsigned long long>(summary.chunks_per_cp),
                summary.participating_cps,
                static_cast<unsigned long long>(summary.total_chunks));
    return 0;
  }

  std::printf("pattern %s, %u-byte records, %s layout, method %s\n", cfg.pattern.c_str(),
              cfg.record_bytes, fs::LayoutName(cfg.layout), core::MethodName(cfg.method));
  std::printf("machine: %u CPs, %u IOPs, %u disks; file %.0f MB; %u trial(s)\n",
              cfg.machine.num_cps, cfg.machine.num_iops, cfg.machine.num_disks,
              static_cast<double>(cfg.file_bytes) / (1024.0 * 1024.0), cfg.trials);

  auto result = core::RunExperiment(cfg);
  std::printf("\nthroughput: %.2f MB/s (cv %.3f over %zu trials)\n", result.mean_mbps,
              result.cv, result.trials.size());

  if (verbose) {
    for (std::size_t t = 0; t < result.trials.size(); ++t) {
      const auto& stats = result.trials[t];
      std::printf("  trial %zu: %.2f MB/s, %.1f ms, %llu requests, %llu pieces\n", t,
                  stats.ThroughputMBps(), static_cast<double>(stats.elapsed_ns()) / 1e6,
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.pieces));
    }
    const auto& last = result.trials.back();
    std::printf("\nutilization (last trial): cp-cpu max %.0f%%, iop-cpu max %.0f%%, "
                "bus max %.0f%%, disk mechanism avg %.0f%%\n",
                100 * last.max_cp_cpu_util, 100 * last.max_iop_cpu_util,
                100 * last.max_bus_util, 100 * last.avg_disk_util);
    std::printf("events simulated: %llu\n",
                static_cast<unsigned long long>(result.total_events));
  }
  return 0;
}
