// simulate: command-line front end to the whole simulator — run any single
// experiment configuration, or a multi-operation workload session, and get
// throughput plus a resource-utilization breakdown identifying the binding
// bottleneck. Methods are dispatched by name through core::FileSystemRegistry.
//
//   $ ./simulate --pattern=rc --record=8 --method=tc
//   $ ./simulate --pattern=wbb --method=ddio --layout=random --trials=5
//   $ ./simulate --workload="wbb;rbb,record=4096" --trials=3
//   $ ./simulate --pattern=rb --method=ddio --cps=8 --iops=4 --disks=8 --verbose
//
// Flags:
//   --pattern=NAME     ra rn rb rc rnb rbb rcb rbc rcc rcn (r->w for writes),
//                      plus parameterized CYCLIC(k)/BLOCK(k) dims (rc4, wb2c8)
//                      and irregular index lists (ri:<seed>)
//   --record=BYTES     record size (default 8192)
//   --method=M         any registered method: tc | ddio | ddio-nosort | twophase
//   --layout=L         contiguous | random | mirror:K (default contiguous;
//                      mirror:K keeps K copies of every block on distinct disks)
//   --cps=N --iops=N --disks=N --file-mb=N --trials=N --seed=N
//   --disk=SPEC        storage-device model: hp97560 | hp97560:seg=4,ra=256 |
//                      fixed:lat=0.2ms,bw=40MB | ssd:chan=4,rlat=80us,wlat=200us;
//                      join with '+' for a heterogeneous fleet (round-robin)
//   --net=SPEC         interconnect topology: torus (paper default) |
//                      torus:w=8,h=8 | tree:radix=32,bw=1GB,up=400MB,lat=100ns
//                      (hierarchical NIC -> ToR -> spine; up/uplat = trunks)
//   --jobs=N           run independent trials on N threads (0 = all hardware
//                      threads; default 1). Output is byte-identical for any N.
//   --workload=SPEC    multi-operation session: "PHASE[;PHASE...]" with PHASE =
//                      PATTERN[,record=B][,mb=N][,file=K][,layout=L][,method=M]
//                      [,compute=MS][,filter=F][,fseed=N]
//   --filter=F         filtered read keeping fraction F of records (methods
//                      with caps().supports_filtered_read only)
//   --filter-seed=N    selection seed for --filter (default 0)
//   --json=PATH        machine-readable per-phase results (bench JSON format)
//   --tenants=SPEC     multi-tenant serving: concurrent sessions on ONE machine,
//                      "[sched=fifo|fair|deadline;][admit=N;]t0:FIELDS;t1:..."
//                      with FIELDS from w= pat= method= record= mb= reps=
//                      compute= deadline= (see src/tenant/tenant_spec.h)
//   --tc-cache=SPEC    TC buffer-cache policy: lru | clock | slru[:prot=P],
//                      with optional ra=K (read-ahead blocks per disk) and
//                      wb=full|hi:P (write-behind mode), e.g.
//                      slru:prot=60,ra=4,wb=hi:75 (default lru:ra=1,wb=full)
//   --faults=SPEC      seed-deterministic fault plan, e.g.
//                      "disk:2,stall=50ms@t=0.8s;disk:5,fail@t=1.2s;
//                       link:cp3-iop1,drop=0.01;iop:4,crash@t=2.0s"
//   --trace=SPEC       observability planes, ';'/',' joined:
//                      chrome:PATH (Perfetto/chrome://tracing span trace),
//                      counters[:every=DUR] (time-series samples; needs a
//                      chrome: or csv: sink), csv:PATH (counter series CSV),
//                      attrib (per-phase time-attribution report). Pure
//                      observers: simulated results are byte-identical
//   --elevator         C-SCAN IOP disk queues (default FCFS)
//   --strided          TC strided requests (future-work extension)
//   --gather           DDIO gather/scatter Memput/Memget (future-work extension)
//   --contention       model per-link contention on the interconnect
//   --describe         print every configured plane (pattern chunk structure,
//                      disks, cache, interconnect, layout, faults, tenants,
//                      trace) and exit
//   --verbose          per-trial results + utilization snapshot

#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/describe.h"
#include "src/core/fs_registry.h"
#include "src/core/machine.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/spec_error.h"
#include "src/core/validation.h"
#include "src/core/workload.h"
#include "src/obs/trace_export.h"
#include "src/obs/trace_spec.h"
#include "src/disk/disk_registry.h"
#include "src/disk/disk_unit.h"
#include "src/fault/fault_spec.h"
#include "src/fs/layout.h"
#include "src/fs/striped_file.h"
#include "src/net/net_spec.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"
#include "src/tc/cache_policy.h"
#include "src/tenant/tenant_scheduler.h"
#include "src/tenant/tenant_spec.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--pattern=NAME] [--record=BYTES] [--method=%s]\n"
      "          [--layout=contiguous|random|mirror:K] [--cps=N] [--iops=N] [--disks=N]\n"
      "          [--disk=SPEC] [--net=SPEC] [--file-mb=N] [--trials=N] [--seed=N] [--jobs=N]\n"
      "          [--workload=SPEC] [--tenants=SPEC] [--filter=F] [--filter-seed=N]\n"
      "          [--json=PATH] [--tc-cache=SPEC] [--faults=SPEC] [--trace=SPEC]\n"
      "          [--elevator] [--strided] [--gather]\n"
      "          [--contention] [--describe] [--verbose]\n"
      "  --tc-cache TC buffer-cache policy (%s), with optional ra=K read-ahead\n"
      "         depth in [0, 64] and wb=full|hi:P write-behind, e.g. clock:ra=4\n"
      "         or slru:prot=60,wb=hi:75 (default lru:ra=1,wb=full)\n"
      "  --pattern names: HPF letters (ra rn rb rc rnb ... wcn), optionally\n"
      "         parameterized per dimension (rc4 = CYCLIC(4), rb2c8), or an\n"
      "         irregular index list ri:<seed> / wi:<seed>\n"
      "  --disk storage-device models (%s): e.g. hp97560:seg=4,ra=256,\n"
      "         fixed:lat=0.2ms,bw=40MB, ssd:chan=4,rlat=80us,wlat=200us;\n"
      "         '+'-join specs for a heterogeneous fleet (round-robin over disks)\n"
      "  --net interconnect topologies (%s): torus (paper default, near-square\n"
      "         grid), torus:w=8,h=8, or tree:radix=32,bw=1GB,up=400MB,lat=100ns,\n"
      "         uplat=500ns (NIC -> ToR -> spine; up/uplat set trunk links)\n"
      "  --jobs runs independent trials on N threads (0 = all hardware threads;\n"
      "         default 1); results are byte-identical for any N\n"
      "  --workload phases: PATTERN[,record=B][,mb=N][,file=K][,layout=L][,method=M]\n"
      "                     [,compute=MS][,filter=F][,fseed=N], joined with ';'\n"
      "  --tenants serves N concurrent sessions on one shared machine:\n"
      "         [sched=fifo|fair|deadline;][admit=N;]t0:FIELDS;t1:FIELDS;... with\n"
      "         FIELDS from w=1..100, pat=NAME, method=M, record=B, mb=N,\n"
      "         reps=N, compute=MS, deadline=DUR (sched=deadline only)\n"
      "  --filter runs a filtered collective read keeping fraction F in (0,1] of\n"
      "         records (needs a method with caps().supports_filtered_read)\n"
      "  --contention models per-link contention on the interconnect\n"
      "  --faults injects a seed-deterministic fault plan, events joined with ';':\n"
      "         disk:N,stall=DUR@t=TIME | disk:N,fail@t=TIME | iop:N,crash@t=TIME |\n"
      "         link:cpA-iopB,drop=P | link:cpA-iopB,delay=DUR (pair with\n"
      "         --layout=mirror:K for failover; per-phase status is reported)\n"
      "  --trace selects observability planes, ';'/',' joined: chrome:PATH\n"
      "         (Perfetto-loadable span trace), counters[:every=DUR] (time-series\n"
      "         samples; needs a chrome:/csv: sink; DUR unit mandatory: ns/us/ms/s),\n"
      "         csv:PATH (counter series CSV), attrib (per-phase time attribution\n"
      "         into disk-position/disk-transfer/nic/network/cache-stall/compute)\n"
      "  --describe prints every configured plane (pattern chunk structure, disk\n"
      "         fleet, queues, tc cache, interconnect, layout, fault plan,\n"
      "         tenants, trace), then exits\n",
      argv0, ddio::core::FileSystemRegistry::BuiltIns().NamesJoined("|").c_str(),
      ddio::tc::CachePolicyRegistry::BuiltIns().NamesJoined("|").c_str(),
      ddio::disk::DiskModelRegistry::BuiltIns().NamesJoined("|").c_str(),
      ddio::net::TopologyRegistry::BuiltIns().NamesJoined("|").c_str());
  std::exit(2);
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

// Writes the configured trace sinks (chrome JSON, counter CSV) from the
// trial-index-ordered trace data. Exits 1 when a sink file cannot be written.
void ExportTraces(const ddio::obs::TraceSpec& spec,
                  const std::vector<ddio::obs::TraceData>& traces) {
  if (!spec.chrome && !spec.csv) {
    return;
  }
  std::string error;
  if (spec.chrome) {
    if (!ddio::obs::WriteFile(spec.chrome_path, ddio::obs::ChromeTraceJson(traces), &error)) {
      std::fprintf(stderr, "--trace: %s\n", error.c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", spec.chrome_path.c_str());
  }
  if (spec.csv) {
    if (!ddio::obs::WriteFile(spec.csv_path, ddio::obs::CounterCsv(traces), &error)) {
      std::fprintf(stderr, "--trace: %s\n", error.c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", spec.csv_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ddio;
  core::ExperimentConfig cfg;
  cfg.pattern = "rb";
  std::string method_key = core::MethodKey(cfg.method);
  std::string workload_spec;
  std::string tenants_spec;
  std::string json_path;
  unsigned jobs = 1;
  double filter_selectivity = -1.0;
  std::uint64_t filter_seed = 0;
  bool verbose = false;
  bool describe = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (MatchFlag(arg, "--pattern", &value)) {
      cfg.pattern = value;
    } else if (MatchFlag(arg, "--record", &value)) {
      cfg.record_bytes = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--method", &value)) {
      method_key = value;
      if (!core::FileSystemRegistry::BuiltIns().Has(method_key)) {
        std::fprintf(stderr, "unknown method \"%s\" (registered: %s)\n", value,
                     core::FileSystemRegistry::BuiltIns().NamesJoined().c_str());
        Usage(argv[0]);
      }
    } else if (MatchFlag(arg, "--layout", &value)) {
      if (std::string layout_error;
          !fs::ParseLayout(value, &cfg.layout, &cfg.replicas, &layout_error)) {
        core::SpecError("--layout", layout_error);
      }
    } else if (MatchFlag(arg, "--tc-cache", &value)) {
      if (std::string cache_error;
          !tc::CacheSpec::TryParse(value, &cfg.tc_cache, &cache_error)) {
        core::SpecError("--tc-cache", cache_error);
      }
    } else if (MatchFlag(arg, "--faults", &value)) {
      if (std::string fault_error;
          !fault::FaultSpec::TryParse(value, &cfg.machine.faults, &fault_error)) {
        core::SpecError("--faults", fault_error);
      }
    } else if (MatchFlag(arg, "--trace", &value)) {
      if (std::string trace_error; !obs::TraceSpec::TryParse(value, &cfg.trace, &trace_error)) {
        core::SpecError("--trace", trace_error);
      }
    } else if (MatchFlag(arg, "--cps", &value)) {
      cfg.machine.num_cps = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--iops", &value)) {
      cfg.machine.num_iops = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--disks", &value)) {
      cfg.machine.num_disks = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--disk", &value)) {
      std::vector<disk::DiskSpec> specs;
      if (std::string disk_error; !disk::DiskSpec::TryParseList(value, &specs, &disk_error)) {
        core::SpecError("--disk", disk_error);
      }
      cfg.machine.SetDisks(std::move(specs));
    } else if (MatchFlag(arg, "--net", &value)) {
      if (std::string net_error;
          !net::NetSpec::TryParse(value, &cfg.machine.net.topology, &net_error)) {
        core::SpecError("--net", net_error);
      }
    } else if (MatchFlag(arg, "--filter", &value)) {
      char* end = nullptr;
      filter_selectivity = std::strtod(value, &end);
      if (end == value || *end != '\0' || filter_selectivity <= 0.0 ||
          filter_selectivity > 1.0) {
        core::SpecError("--filter", "wants a fraction in (0, 1]");
      }
    } else if (MatchFlag(arg, "--filter-seed", &value)) {
      filter_seed = std::strtoull(value, nullptr, 10);
    } else if (MatchFlag(arg, "--file-mb", &value)) {
      cfg.file_bytes = std::strtoull(value, nullptr, 10) * 1024 * 1024;
    } else if (MatchFlag(arg, "--trials", &value)) {
      cfg.trials = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (MatchFlag(arg, "--seed", &value)) {
      cfg.base_seed = std::strtoull(value, nullptr, 10);
    } else if (MatchFlag(arg, "--jobs", &value)) {
      // Strict parse: "--jobs=all" must not strtoul to 0, the
      // all-hardware-threads sentinel.
      char* end = nullptr;
      jobs = static_cast<unsigned>(std::strtoul(value, &end, 10));
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "--jobs wants a number (0 = all hardware threads)\n");
        Usage(argv[0]);
      }
    } else if (MatchFlag(arg, "--workload", &value)) {
      workload_spec = value;
    } else if (MatchFlag(arg, "--tenants", &value)) {
      tenants_spec = value;
    } else if (MatchFlag(arg, "--json", &value)) {
      json_path = value;
    } else if (std::strcmp(arg, "--elevator") == 0) {
      cfg.machine.disk_queue = disk::DiskQueuePolicy::kElevator;
    } else if (std::strcmp(arg, "--strided") == 0) {
      cfg.tc_strided = true;
    } else if (std::strcmp(arg, "--gather") == 0) {
      cfg.ddio_gather_scatter = true;
    } else if (std::strcmp(arg, "--contention") == 0) {
      cfg.machine.net.model_link_contention = true;
    } else if (std::strcmp(arg, "--describe") == 0) {
      describe = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else {
      Usage(argv[0]);
    }
  }

  if (cfg.trials == 0 || cfg.file_bytes == 0) {
    std::fprintf(stderr, "trials and file-mb must be positive\n");
    return 2;
  }

  // Bound-check the fault plan against the final machine geometry (the
  // --cps/--iops/--disks flags may follow --faults on the command line).
  if (std::string fault_error;
      !cfg.machine.faults.Validate(cfg.machine.num_cps, cfg.machine.num_iops,
                                   cfg.machine.num_disks, &fault_error)) {
    core::SpecError("--faults", fault_error);
  }
  // Same for the topology: an explicit grid must hold the final node count.
  if (std::string net_error;
      !cfg.machine.net.topology.Validate(cfg.machine.num_nodes(), &net_error)) {
    core::SpecError("--net", net_error);
  }
  if (cfg.replicas > cfg.machine.num_disks) {
    core::SpecError("--layout", "mirror:" + std::to_string(cfg.replicas) + " needs at least " +
                                    std::to_string(cfg.replicas) + " disks (have " +
                                    std::to_string(cfg.machine.num_disks) + ")");
  }

  // Validate the user-supplied pattern and geometry up front on the paths
  // that use them (describe, single-pattern run): both reach
  // PatternSpec::Parse and AccessPattern, which abort on bad input. TryParse
  // owns the grammar; fail with a usage error instead. Workload mode
  // validates per phase below — the global --pattern/--record defaults may
  // be unused there.
  if ((workload_spec.empty() && tenants_spec.empty()) || describe) {
    pattern::PatternSpec parsed;
    if (!pattern::PatternSpec::TryParse(cfg.pattern, &parsed)) {
      std::fprintf(stderr, "bad pattern name \"%s\" (ra, rn, rb, rc, rnb, ..., rc4, wb2c8, "
                   "ri:<seed>; r->w for writes)\n", cfg.pattern.c_str());
      return 2;
    }
    if (std::string geometry_error;
        !core::Workload::SinglePhase(cfg).ValidateGeometry(cfg, &geometry_error)) {
      std::fprintf(stderr, "%s\n", geometry_error.c_str());
      return 2;
    }
  }

  if (describe) {
    std::string tenants_desc;
    if (!tenants_spec.empty()) {
      tenant::TenantSpec spec;
      std::string error;
      if (!tenant::TenantSpec::TryParse(tenants_spec, &spec, &error) ||
          !spec.Validate(&error)) {
        core::SpecError("--tenants", error);
      }
      tenants_desc = spec.Describe();
    }
    std::fputs(core::DescribeExperiment(cfg, tenants_desc).c_str(), stdout);
    return 0;
  }

  bench::JsonPointSink json(json_path);

  if (!tenants_spec.empty()) {
    if (!workload_spec.empty() || filter_selectivity >= 0) {
      std::fprintf(stderr, "--tenants does not combine with --workload or --filter; use the "
                   "per-tenant pat=/method=/reps= fields instead\n");
      return 2;
    }
    tenant::TenantSpec spec;
    std::string error;
    if (!tenant::TenantSpec::TryParse(tenants_spec, &spec, &error) || !spec.Validate(&error)) {
      core::SpecError("--tenants", error);
    }
    cfg.method_key = method_key;  // Tenants without method= inherit --method.
    for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
      const tenant::TenantEntry& entry = spec.tenants[t];
      const std::uint64_t file = entry.file_bytes != 0 ? entry.file_bytes : cfg.file_bytes;
      const std::uint32_t record =
          entry.record_bytes != 0 ? entry.record_bytes : cfg.record_bytes;
      if (record == 0 || file % record != 0) {
        core::SpecError("--tenants", "t" + std::to_string(t) + "'s " + std::to_string(file) +
                                         "-byte file does not hold whole " +
                                         std::to_string(record) + "-byte records");
      }
    }

    std::printf("tenants: %s, default method %s, %u trial(s)\n", spec.Describe().c_str(),
                method_key.c_str(), cfg.trials);
    std::printf("machine: %u CPs, %u IOPs, %u disks (%s), shared by all tenants\n",
                cfg.machine.num_cps, cfg.machine.num_iops, cfg.machine.num_disks,
                DescribeFleet(cfg.machine).c_str());

    auto result = tenant::RunMultiTenantExperiment(cfg, spec, jobs);
    std::vector<core::PhaseAttribution> tenant_attribs;
    const bool faults = cfg.machine.faults.active();
    std::printf("\n%-6s %-12s %-8s %3s %4s %10s %8s %12s %12s%s\n", "tenant", "method",
                "pattern", "w", "reps", "MB/s", "cv", "finish ms", "disk-busy ms",
                faults ? "  status" : "");
    for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
      const tenant::TenantEntry& entry = spec.tenants[t];
      const std::string tenant_method = entry.method.empty() ? method_key : entry.method;
      // cv over every (trial, rep) sample, same estimator as the workload path.
      double sq_sum = 0.0;
      std::size_t n = 0;
      for (const auto& trial : result.trials) {
        for (const core::OpStats& stats : trial.tenants[t].phases) {
          const double d = stats.ThroughputMBps() - result.mean_mbps[t];
          sq_sum += d * d;
          ++n;
        }
      }
      const double cv = n > 0 && result.mean_mbps[t] > 0
                            ? std::sqrt(sq_sum / static_cast<double>(n)) / result.mean_mbps[t]
                            : 0.0;
      const tenant::TenantResult& last = result.trials.back().tenants[t];
      std::printf("%-6zu %-12s %-8s %3u %4u %10.2f %8.3f %12.1f %12.1f", t,
                  tenant_method.c_str(), entry.pattern.c_str(), entry.weight, entry.reps,
                  result.mean_mbps[t], cv, static_cast<double>(last.finished_ns) / 1e6,
                  static_cast<double>(last.disk_busy_ns) / 1e6);
      if (faults) {
        const core::OpStatus& status = last.phases.back().status;
        std::printf("  %s (retries %llu, attempts %u)%s%s", core::OutcomeName(status.outcome),
                    static_cast<unsigned long long>(status.retries), status.attempts,
                    status.detail.empty() ? "" : ": ", status.detail.c_str());
      }
      std::printf("\n");
      // Per-tenant attribution summed over the last trial's phases.
      core::PhaseAttribution attrib;
      for (const core::OpStats& stats : last.phases) {
        if (stats.attrib.filled) {
          attrib.filled = true;
          attrib.disk_position_ns += stats.attrib.disk_position_ns;
          attrib.disk_transfer_ns += stats.attrib.disk_transfer_ns;
          attrib.nic_ns += stats.attrib.nic_ns;
          attrib.network_ns += stats.attrib.network_ns;
          attrib.cache_stall_ns += stats.attrib.cache_stall_ns;
          attrib.compute_ns += stats.attrib.compute_ns;
        }
      }
      json.Add("tenant", t, tenant_method, entry.pattern, result.mean_mbps[t], cv, cfg.trials,
               "", "",
               cfg.trace.attrib && attrib.filled ? core::AttribJsonField(attrib) : "");
      tenant_attribs.push_back(attrib);
    }
    if (cfg.trace.attrib) {
      for (std::size_t t = 0; t < tenant_attribs.size(); ++t) {
        if (!tenant_attribs[t].filled) {
          continue;
        }
        const tenant::TenantResult& last = result.trials.back().tenants[t];
        std::printf("\ntenant %zu time attribution (last trial):\n", t);
        core::PrintAttribution(tenant_attribs[t], last.finished_ns - last.admitted_ns,
                               std::cout);
      }
    }
    if (verbose) {
      std::printf("\nevents simulated: %llu\n",
                  static_cast<unsigned long long>(result.total_events));
    }
    if (cfg.trace.chrome || cfg.trace.csv) {
      std::vector<obs::TraceData> traces;
      for (const auto& trial : result.trials) {
        if (trial.trace != nullptr) {
          traces.push_back(*trial.trace);
        }
      }
      ExportTraces(cfg.trace, traces);
    }
    json.Flush();
    return 0;
  }

  if (!workload_spec.empty()) {
    if (filter_selectivity >= 0) {
      std::fprintf(stderr,
                   "--filter does not combine with --workload; use the per-phase "
                   "filter=F[,fseed=N] options instead\n");
      return 2;
    }
    core::Workload workload;
    std::string error;
    if (!core::Workload::Parse(workload_spec, &workload, &error)) {
      core::SpecError("--workload", error);
    }
    for (core::WorkloadPhase& phase : workload.phases) {
      if (phase.method.empty()) {
        phase.method = method_key;  // Phases inherit --method unless overridden.
      } else if (!core::FileSystemRegistry::BuiltIns().Has(phase.method)) {
        core::SpecError("--workload",
                        "unknown method \"" + phase.method + "\" (registered: " +
                            core::FileSystemRegistry::BuiltIns().NamesJoined() + ")");
      }
    }
    if (std::string geometry_error; !workload.ValidateGeometry(cfg, &geometry_error)) {
      core::SpecError("--workload", geometry_error);
    }
    // Reject capability violations (filter= on a method without filtered
    // reads) with a clean exit instead of the base-class abort.
    if (std::string caps_error; !workload.ValidateCapabilities(method_key, &caps_error)) {
      core::SpecError("--workload", caps_error);
    }
    std::printf("workload: %zu phase(s), default method %s, %u trial(s)\n",
                workload.phases.size(), method_key.c_str(), cfg.trials);
    std::printf("machine: %u CPs, %u IOPs, %u disks (%s)\n", cfg.machine.num_cps,
                cfg.machine.num_iops, cfg.machine.num_disks,
                DescribeFleet(cfg.machine).c_str());

    auto result = core::RunWorkloadExperiment(cfg, workload, jobs);
    const bool faults = cfg.machine.faults.active();
    std::printf("\n%-5s %-12s %-8s %10s %8s %12s%s\n", "phase", "method", "pattern", "MB/s",
                "cv", "elapsed ms", faults ? "  status" : "");
    for (std::size_t p = 0; p < workload.phases.size(); ++p) {
      const core::WorkloadPhase& phase = workload.phases[p];
      const std::string phase_method = phase.method.empty() ? method_key : phase.method;
      const core::OpStats& last = result.trials.back().phases[p];
      std::printf("%-5zu %-12s %-8s %10.2f %8.3f %12.1f", p, phase_method.c_str(),
                  phase.pattern.c_str(), result.mean_mbps[p], result.cv[p],
                  static_cast<double>(last.elapsed_ns()) / 1e6);
      if (faults) {
        std::printf("  %s (retries %llu, attempts %u)%s%s",
                    core::OutcomeName(last.status.outcome),
                    static_cast<unsigned long long>(last.status.retries), last.status.attempts,
                    last.status.detail.empty() ? "" : ": ",
                    last.status.detail.c_str());
      }
      std::printf("\n");
      json.Add("phase", p, phase_method, phase.pattern, result.mean_mbps[p], result.cv[p],
               cfg.trials, "", "",
               cfg.trace.attrib && last.attrib.filled ? core::AttribJsonField(last.attrib)
                                                      : "");
    }
    if (cfg.trace.attrib) {
      for (std::size_t p = 0; p < workload.phases.size(); ++p) {
        const core::OpStats& last = result.trials.back().phases[p];
        if (!last.attrib.filled) {
          continue;
        }
        std::printf("\nphase %zu time attribution (last trial):\n", p);
        core::PrintAttribution(last.attrib, last.elapsed_ns(), std::cout);
      }
    }
    if (verbose) {
      std::printf("\nevents simulated: %llu\n",
                  static_cast<unsigned long long>(result.total_events));
    }
    if (cfg.trace.chrome || cfg.trace.csv) {
      std::vector<obs::TraceData> traces;
      for (const auto& trial : result.trials) {
        if (trial.trace != nullptr) {
          traces.push_back(*trial.trace);
        }
      }
      ExportTraces(cfg.trace, traces);
    }
    json.Flush();
    return 0;
  }

  // A classic single-pattern experiment is a 1-phase workload dispatched by
  // registry key — the same path `--workload` takes, so custom-registered
  // methods work here too.
  core::Method method_enum;
  const char* display = core::MethodFromKey(method_key, &method_enum)
                            ? core::MethodName(method_enum)
                            : method_key.c_str();
  std::printf("pattern %s, %u-byte records, %s layout, method %s\n", cfg.pattern.c_str(),
              cfg.record_bytes, fs::LayoutName(cfg.layout), display);
  std::printf("machine: %u CPs, %u IOPs, %u disks (%s); file %.0f MB; %u trial(s)\n",
              cfg.machine.num_cps, cfg.machine.num_iops, cfg.machine.num_disks,
              DescribeFleet(cfg.machine).c_str(),
              static_cast<double>(cfg.file_bytes) / (1024.0 * 1024.0), cfg.trials);

  core::Workload workload = core::Workload::SinglePhase(cfg);
  workload.phases[0].method = method_key;
  if (filter_selectivity >= 0) {
    workload.phases[0].filter_selectivity = filter_selectivity;
    workload.phases[0].filter_seed = filter_seed;
    if (std::string caps_error; !workload.ValidateCapabilities(method_key, &caps_error)) {
      core::SpecError("--filter", caps_error);
    }
    std::printf("filtered read: selectivity %.3f, seed %llu\n", filter_selectivity,
                static_cast<unsigned long long>(filter_seed));
  }
  auto result = core::RunWorkloadExperiment(cfg, workload, jobs);
  std::printf("\nthroughput: %.2f MB/s (cv %.3f over %zu trials)\n", result.mean_mbps[0],
              result.cv[0], result.trials.size());
  if (cfg.machine.faults.active()) {
    for (std::size_t t = 0; t < result.trials.size(); ++t) {
      const core::OpStatus& status = result.trials[t].phases[0].status;
      std::printf("  trial %zu status: %s (retries %llu, attempts %u)%s%s\n", t,
                  core::OutcomeName(status.outcome),
                  static_cast<unsigned long long>(status.retries), status.attempts,
                  status.detail.empty() ? "" : ": ", status.detail.c_str());
    }
  }
  const core::OpStats& last_phase = result.trials.back().phases[0];
  if (cfg.trace.attrib && last_phase.attrib.filled) {
    std::printf("\ntime attribution (last trial):\n");
    core::PrintAttribution(last_phase.attrib, last_phase.elapsed_ns(), std::cout);
  }
  json.Add("phase", 0, method_key, cfg.pattern, result.mean_mbps[0], result.cv[0], cfg.trials,
           "", "",
           cfg.trace.attrib && last_phase.attrib.filled
               ? core::AttribJsonField(last_phase.attrib)
               : "");
  if (cfg.trace.chrome || cfg.trace.csv) {
    std::vector<obs::TraceData> traces;
    for (const auto& trial : result.trials) {
      if (trial.trace != nullptr) {
        traces.push_back(*trial.trace);
      }
    }
    ExportTraces(cfg.trace, traces);
  }
  json.Flush();

  if (verbose) {
    for (std::size_t t = 0; t < result.trials.size(); ++t) {
      const auto& stats = result.trials[t].phases[0];
      std::printf("  trial %zu: %.2f MB/s, %.1f ms, %llu requests, %llu pieces\n", t,
                  stats.ThroughputMBps(), static_cast<double>(stats.elapsed_ns()) / 1e6,
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.pieces));
    }
    const auto& last = result.trials.back().phases[0];
    std::printf("\nutilization (last trial): cp-cpu max %.0f%%, iop-cpu max %.0f%%, "
                "bus max %.0f%%, disk mechanism avg %.0f%%\n",
                100 * last.max_cp_cpu_util, 100 * last.max_iop_cpu_util,
                100 * last.max_bus_util, 100 * last.avg_disk_util);
    std::printf("events simulated: %llu\n",
                static_cast<unsigned long long>(result.total_events));
  }
  return 0;
}
