// Quickstart: load a distributed matrix from a striped file with
// disk-directed I/O, and see why the paper's technique matters.
//
// Builds the paper's machine (16 CPs, 16 IOPs, 16 HP 97560 disks on a 6x6
// torus), creates a 10 MB file striped block-by-block over all disks, and
// performs one collective read of an 8 KB-record matrix distributed
// BLOCK x BLOCK over a 4x4 CP grid — first with the traditional-caching
// file system, then with disk-directed I/O.
//
//   $ ./quickstart
//
// Expected output: DDIO at ~33 MB/s (93% of the 37.5 MB/s aggregate disk
// bandwidth) vs. TC at a fraction of that.

#include <cstdio>

#include "src/core/machine.h"
#include "src/core/op_stats.h"
#include "src/ddio/ddio_fs.h"
#include "src/fs/striped_file.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"
#include "src/tc/tc_fs.h"

namespace {

// Runs one collective read of `pattern_name` on a fresh paper-default
// machine using the requested file system.
ddio::core::OpStats ReadMatrix(const char* pattern_name, bool disk_directed) {
  using namespace ddio;

  // 1. A simulation engine and the Table-1 machine.
  sim::Engine engine(/*seed=*/42);
  core::MachineConfig machine_config;  // Defaults = paper's Table 1.
  core::Machine machine(engine, machine_config);

  // 2. A 10 MB file, striped block-by-block over all 16 disks, physically
  //    contiguous on each disk.
  fs::StripedFile::Params file_params;
  file_params.file_bytes = 10 * 1024 * 1024;
  file_params.layout = fs::LayoutKind::kContiguous;
  fs::StripedFile file(file_params, engine.rng());

  // 3. The access pattern: a matrix of 8 KB records distributed
  //    BLOCK x BLOCK over the 16 CPs (HPF notation; "rbb" in the paper).
  pattern::AccessPattern matrix(pattern::PatternSpec::Parse(pattern_name),
                                file_params.file_bytes, /*record_bytes=*/8192,
                                machine.num_cps());

  // 4. Run one collective read and let the simulation drain.
  core::OpStats stats;
  if (disk_directed) {
    ddio_fs::DdioFileSystem fs(machine);
    fs.Start();
    engine.Spawn(fs.RunCollective(file, matrix, &stats));
    engine.Run();
  } else {
    tc::TcFileSystem fs(machine);
    fs.Start();
    engine.Spawn(fs.RunCollective(file, matrix, &stats));
    engine.Run();
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("Collective read of a 10 MB BLOCKxBLOCK matrix (pattern rbb, 8 KB records)\n");
  std::printf("on the paper's machine: 16 CPs, 16 IOPs, 16 disks, contiguous layout.\n\n");

  ddio::core::OpStats tc = ReadMatrix("rbb", /*disk_directed=*/false);
  std::printf("traditional caching : %6.2f MB/s  (%.0f ms, %llu requests, %llu cache hits)\n",
              tc.ThroughputMBps(), static_cast<double>(tc.elapsed_ns()) / 1e6,
              static_cast<unsigned long long>(tc.requests),
              static_cast<unsigned long long>(tc.cache_hits));

  ddio::core::OpStats dd = ReadMatrix("rbb", /*disk_directed=*/true);
  std::printf("disk-directed I/O   : %6.2f MB/s  (%.0f ms, %llu collective requests, "
              "%llu Memput pieces)\n",
              dd.ThroughputMBps(), static_cast<double>(dd.elapsed_ns()) / 1e6,
              static_cast<unsigned long long>(dd.requests),
              static_cast<unsigned long long>(dd.pieces));

  std::printf("\nspeedup: %.1fx (aggregate disk peak is 37.5 MB/s)\n",
              dd.ThroughputMBps() / tc.ThroughputMBps());
  return 0;
}
