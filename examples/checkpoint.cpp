// Checkpointing a climate model: the motivating workload class from the
// paper's introduction ("weather forecasting ... climate modeling ...
// bottlenecked by their file-I/O needs").
//
// A time-stepping simulation holds its state matrix distributed BLOCK x
// BLOCK across the CPs and writes a full checkpoint every K steps. The
// example measures what fraction of wall time goes to checkpointing under
// traditional caching vs. disk-directed I/O, for both 8 KB and 8-byte
// records (the latter models an element-wise dump of double-precision
// state — the pattern that destroys request-per-record file systems).
//
// The whole run is one core::WorkloadSession: compute steps advance
// simulated time and every checkpoint is a collective write phase against
// the persistent machine, with the access method chosen by registry name.
//
//   $ ./checkpoint

#include <cstdio>
#include <string>

#include "src/core/op_stats.h"
#include "src/core/workload.h"
#include "src/sim/time.h"

namespace {

constexpr std::uint64_t kStateBytes = 10 * 1024 * 1024;
constexpr int kTimesteps = 12;
constexpr int kCheckpointEvery = 4;
constexpr ddio::sim::SimTime kComputePerStep = ddio::sim::FromMs(250);

struct Outcome {
  double total_seconds = 0;
  double checkpoint_seconds = 0;
  double checkpoint_mbps = 0;
};

Outcome RunModel(const std::string& method, std::uint32_t record_bytes) {
  using namespace ddio;
  core::ExperimentConfig cfg;
  cfg.file_bytes = kStateBytes;
  cfg.record_bytes = record_bytes;

  core::WorkloadPhase dump;
  dump.pattern = "wbb";
  dump.method = method;

  core::WorkloadSession session(cfg, /*seed=*/3);
  sim::SimTime checkpoint_time = 0;
  std::uint64_t checkpoints = 0;
  for (int step = 1; step <= kTimesteps; ++step) {
    session.AdvanceCompute(kComputePerStep);
    if (step % kCheckpointEvery == 0) {
      core::OpStats stats = session.RunPhase(dump);
      checkpoint_time += stats.elapsed_ns();
      ++checkpoints;
    }
  }

  Outcome outcome;
  outcome.total_seconds = sim::ToSec(session.engine().now());
  outcome.checkpoint_seconds = sim::ToSec(checkpoint_time);
  outcome.checkpoint_mbps = checkpoints == 0
                                ? 0.0
                                : static_cast<double>(kStateBytes) * checkpoints /
                                      sim::ToSec(checkpoint_time) / 1e6;
  return outcome;
}

void Report(const char* fs_name, const Outcome& outcome) {
  std::printf("  %-20s total %6.2f s, checkpoints %6.2f s (%4.1f%% of run) at %6.2f MB/s\n",
              fs_name, outcome.total_seconds, outcome.checkpoint_seconds,
              100.0 * outcome.checkpoint_seconds / outcome.total_seconds,
              outcome.checkpoint_mbps);
}

}  // namespace

int main() {
  std::printf("Climate model: %d timesteps (%.0f ms compute each), 10 MB checkpoint every %d\n"
              "steps, state distributed BLOCKxBLOCK over 16 CPs.\n\n",
              kTimesteps, static_cast<double>(kComputePerStep) / 1e6, kCheckpointEvery);

  std::printf("8 KB records (row-at-a-time dump):\n");
  Report("traditional caching", RunModel("tc", 8192));
  Report("disk-directed I/O", RunModel("ddio", 8192));

  std::printf("\n8-byte records (element-wise dump of doubles):\n");
  Report("traditional caching", RunModel("tc", 8));
  Report("disk-directed I/O", RunModel("ddio", 8));
  return 0;
}
