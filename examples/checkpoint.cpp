// Checkpointing a climate model: the motivating workload class from the
// paper's introduction ("weather forecasting ... climate modeling ...
// bottlenecked by their file-I/O needs").
//
// A time-stepping simulation holds its state matrix distributed BLOCK x
// BLOCK across the CPs and writes a full checkpoint every K steps. The
// example measures what fraction of wall time goes to checkpointing under
// traditional caching vs. disk-directed I/O, for both 8 KB and 8-byte
// records (the latter models an element-wise dump of double-precision
// state — the pattern that destroys request-per-record file systems).
//
//   $ ./checkpoint

#include <cstdio>
#include <memory>

#include "src/core/machine.h"
#include "src/core/op_stats.h"
#include "src/ddio/ddio_fs.h"
#include "src/fs/striped_file.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/tc/tc_fs.h"

namespace {

constexpr std::uint64_t kStateBytes = 10 * 1024 * 1024;
constexpr int kTimesteps = 12;
constexpr int kCheckpointEvery = 4;
constexpr ddio::sim::SimTime kComputePerStep = ddio::sim::FromMs(250);

struct Outcome {
  double total_seconds = 0;
  double checkpoint_seconds = 0;
  double checkpoint_mbps = 0;
};

template <typename FileSystem>
Outcome RunModel(std::uint32_t record_bytes) {
  using namespace ddio;
  sim::Engine engine(/*seed=*/3);
  core::MachineConfig machine_config;
  core::Machine machine(engine, machine_config);

  fs::StripedFile::Params file_params;
  file_params.file_bytes = kStateBytes;
  file_params.layout = fs::LayoutKind::kContiguous;
  fs::StripedFile checkpoint_file(file_params, engine.rng());

  pattern::AccessPattern dump(pattern::PatternSpec::Parse("wbb"), kStateBytes, record_bytes,
                              machine.num_cps());

  FileSystem file_system(machine);
  file_system.Start();

  Outcome outcome;
  engine.Spawn([](sim::Engine& e, FileSystem& fs_ref, const fs::StripedFile& file,
                  const pattern::AccessPattern& pattern, Outcome& out) -> sim::Task<> {
    sim::SimTime checkpoint_time = 0;
    std::uint64_t checkpoints = 0;
    for (int step = 1; step <= kTimesteps; ++step) {
      co_await e.Delay(kComputePerStep);
      if (step % kCheckpointEvery == 0) {
        core::OpStats stats;
        co_await fs_ref.RunCollective(file, pattern, &stats);
        checkpoint_time += stats.elapsed_ns();
        ++checkpoints;
      }
    }
    out.total_seconds = sim::ToSec(e.now());
    out.checkpoint_seconds = sim::ToSec(checkpoint_time);
    out.checkpoint_mbps = checkpoints == 0
                              ? 0.0
                              : static_cast<double>(kStateBytes) * checkpoints /
                                    sim::ToSec(checkpoint_time) / 1e6;
  }(engine, file_system, checkpoint_file, dump, outcome));
  engine.Run();
  return outcome;
}

void Report(const char* fs_name, const Outcome& outcome) {
  std::printf("  %-20s total %6.2f s, checkpoints %6.2f s (%4.1f%% of run) at %6.2f MB/s\n",
              fs_name, outcome.total_seconds, outcome.checkpoint_seconds,
              100.0 * outcome.checkpoint_seconds / outcome.total_seconds,
              outcome.checkpoint_mbps);
}

}  // namespace

int main() {
  std::printf("Climate model: %d timesteps (%.0f ms compute each), 10 MB checkpoint every %d\n"
              "steps, state distributed BLOCKxBLOCK over 16 CPs.\n\n",
              kTimesteps, static_cast<double>(kComputePerStep) / 1e6, kCheckpointEvery);

  std::printf("8 KB records (row-at-a-time dump):\n");
  Report("traditional caching", RunModel<ddio::tc::TcFileSystem>(8192));
  Report("disk-directed I/O", RunModel<ddio::ddio_fs::DdioFileSystem>(8192));

  std::printf("\n8-byte records (element-wise dump of doubles):\n");
  Report("traditional caching", RunModel<ddio::tc::TcFileSystem>(8));
  Report("disk-directed I/O", RunModel<ddio::ddio_fs::DdioFileSystem>(8));
  return 0;
}
