// Out-of-core computation: the "memoryloads" workload of the paper's
// Section 2 ("many out-of-core parallel algorithms do I/O in memoryloads:
// they repeatedly load some subset of the file into memory, process it, and
// write it out").
//
// An out-of-core matrix solver works on a 40 MB scratch file in 10 MB
// memoryloads: each sweep reads a slab (BLOCK x BLOCK distribution),
// computes on it, and writes it back. The schedule is one
// core::WorkloadSession per method — the slabs live in the session's file
// table (one file index per slab), each sweep is a read phase plus a write
// phase with the compute time attached, and everything runs on one
// persistent machine.
//
//   $ ./out_of_core

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/op_stats.h"
#include "src/core/workload.h"
#include "src/sim/time.h"

namespace {

constexpr std::uint64_t kSlabBytes = 10 * 1024 * 1024;  // One memoryload.
constexpr int kSweeps = 4;                               // Slabs in the scratch file.
constexpr std::uint32_t kRecordBytes = 8192;
// Simulated compute time per sweep between the read and the write.
constexpr ddio::sim::SimTime kComputePerSweep = ddio::sim::FromMs(120);

struct SweepReport {
  double read_mbps = 0;
  double write_mbps = 0;
};

struct RunReport {
  std::vector<SweepReport> sweeps;
  double total_seconds = 0;
};

RunReport RunSolver(const std::string& method, const char* fs_name) {
  using namespace ddio;
  core::ExperimentConfig cfg;
  cfg.file_bytes = kSlabBytes;
  cfg.record_bytes = kRecordBytes;

  core::WorkloadSession session(cfg, /*seed=*/7);
  RunReport report;
  report.sweeps.resize(kSweeps);
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    // Each slab is its own striped region (session file-table slot) with a
    // contiguous on-disk extent.
    core::WorkloadPhase read_slab;
    read_slab.pattern = "rbb";
    read_slab.method = method;
    read_slab.file_index = static_cast<std::uint32_t>(sweep);
    core::WorkloadPhase write_slab = read_slab;
    write_slab.pattern = "wbb";
    write_slab.compute_ns = kComputePerSweep;  // The compute phase.

    report.sweeps[sweep].read_mbps = session.RunPhase(read_slab).ThroughputMBps();
    report.sweeps[sweep].write_mbps = session.RunPhase(write_slab).ThroughputMBps();
  }
  report.total_seconds = sim::ToSec(session.engine().now());

  std::printf("%s:\n", fs_name);
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    std::printf("  sweep %d: read %6.2f MB/s, write %6.2f MB/s\n", sweep,
                report.sweeps[sweep].read_mbps, report.sweeps[sweep].write_mbps);
  }
  std::printf("  end-to-end: %.2f s (%d sweeps of %d MB in+out, %.0f ms compute each)\n\n",
              report.total_seconds, kSweeps,
              static_cast<int>(kSlabBytes / (1024 * 1024)),
              static_cast<double>(kComputePerSweep) / 1e6);
  return report;
}

}  // namespace

int main() {
  std::printf("Out-of-core solver: %d memoryload sweeps over a %d MB scratch file\n"
              "(read slab -> compute -> write slab; BLOCKxBLOCK distribution).\n\n",
              kSweeps, static_cast<int>(kSweeps * kSlabBytes / (1024 * 1024)));
  RunReport tc = RunSolver("tc", "traditional caching");
  RunReport dd = RunSolver("ddio", "disk-directed I/O");
  std::printf("end-to-end speedup from disk-directed I/O: %.2fx\n",
              tc.total_seconds / dd.total_seconds);
  return 0;
}
