// Out-of-core computation: the "memoryloads" workload of the paper's
// Section 2 ("many out-of-core parallel algorithms do I/O in memoryloads:
// they repeatedly load some subset of the file into memory, process it, and
// write it out").
//
// An out-of-core matrix solver works on a 40 MB scratch file in 10 MB
// memoryloads: each sweep reads a slab (BLOCK x BLOCK distribution),
// computes on it, and writes it back. The example runs the same sweep
// schedule under traditional caching and under disk-directed I/O and
// reports per-sweep and end-to-end times.
//
//   $ ./out_of_core

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/machine.h"
#include "src/core/op_stats.h"
#include "src/ddio/ddio_fs.h"
#include "src/fs/striped_file.h"
#include "src/pattern/pattern.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/tc/tc_fs.h"

namespace {

constexpr std::uint64_t kSlabBytes = 10 * 1024 * 1024;  // One memoryload.
constexpr int kSweeps = 4;                               // Slabs in the scratch file.
constexpr std::uint32_t kRecordBytes = 8192;
// Simulated compute time per sweep between the read and the write.
constexpr ddio::sim::SimTime kComputePerSweep = ddio::sim::FromMs(120);

struct SweepReport {
  double read_mbps = 0;
  double write_mbps = 0;
};

struct RunReport {
  std::vector<SweepReport> sweeps;
  double total_seconds = 0;
};

// One collective-FS interface is enough for the driver.
template <typename FileSystem>
RunReport RunSolver(const char* fs_name) {
  using namespace ddio;
  sim::Engine engine(/*seed=*/7);
  core::MachineConfig machine_config;
  core::Machine machine(engine, machine_config);

  // Each slab is its own striped region; model them as independent striped
  // files with a contiguous on-disk extent per slab.
  std::vector<std::unique_ptr<fs::StripedFile>> slabs;
  for (int s = 0; s < kSweeps; ++s) {
    fs::StripedFile::Params params;
    params.file_bytes = kSlabBytes;
    params.layout = fs::LayoutKind::kContiguous;
    slabs.push_back(std::make_unique<fs::StripedFile>(params, engine.rng()));
  }

  pattern::AccessPattern read_slab(pattern::PatternSpec::Parse("rbb"), kSlabBytes, kRecordBytes,
                                   machine.num_cps());
  pattern::AccessPattern write_slab(pattern::PatternSpec::Parse("wbb"), kSlabBytes, kRecordBytes,
                                    machine.num_cps());

  FileSystem file_system(machine);
  file_system.Start();

  RunReport report;
  report.sweeps.resize(kSweeps);
  engine.Spawn([](sim::Engine& e, FileSystem& fs_ref,
                  std::vector<std::unique_ptr<fs::StripedFile>>& slab_files,
                  const pattern::AccessPattern& rd, const pattern::AccessPattern& wr,
                  RunReport& out) -> sim::Task<> {
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      core::OpStats read_stats;
      co_await fs_ref.RunCollective(*slab_files[sweep], rd, &read_stats);
      co_await e.Delay(kComputePerSweep);  // The compute phase.
      core::OpStats write_stats;
      co_await fs_ref.RunCollective(*slab_files[sweep], wr, &write_stats);
      out.sweeps[sweep].read_mbps = read_stats.ThroughputMBps();
      out.sweeps[sweep].write_mbps = write_stats.ThroughputMBps();
    }
    out.total_seconds = sim::ToSec(e.now());
  }(engine, file_system, slabs, read_slab, write_slab, report));
  engine.Run();

  std::printf("%s:\n", fs_name);
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    std::printf("  sweep %d: read %6.2f MB/s, write %6.2f MB/s\n", sweep,
                report.sweeps[sweep].read_mbps, report.sweeps[sweep].write_mbps);
  }
  std::printf("  end-to-end: %.2f s (%d sweeps of %d MB in+out, %.0f ms compute each)\n\n",
              report.total_seconds, kSweeps,
              static_cast<int>(kSlabBytes / (1024 * 1024)),
              static_cast<double>(kComputePerSweep) / 1e6);
  return report;
}

}  // namespace

int main() {
  std::printf("Out-of-core solver: %d memoryload sweeps over a %d MB scratch file\n"
              "(read slab -> compute -> write slab; BLOCKxBLOCK distribution).\n\n",
              kSweeps, static_cast<int>(kSweeps * kSlabBytes / (1024 * 1024)));
  RunReport tc = RunSolver<ddio::tc::TcFileSystem>("traditional caching");
  RunReport dd = RunSolver<ddio::ddio_fs::DdioFileSystem>("disk-directed I/O");
  std::printf("end-to-end speedup from disk-directed I/O: %.2fx\n",
              tc.total_seconds / dd.total_seconds);
  return 0;
}
